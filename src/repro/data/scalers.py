"""Feature scalers fitted on the training split only.

Following the evaluation protocol of the paper's references [17, 31],
inputs are standardized and predictions are inverse-transformed before
computing metrics.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance scaling (per feature channel)."""

    def __init__(self):
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        """``values`` is (T, N, d); statistics pool time and nodes."""
        self.mean = values.mean(axis=(0, 1))
        std = values.std(axis=(0, 1))
        self.std = np.where(std < 1e-8, 1.0, std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (values - self.mean) / self.std

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return values * self.std + self.mean

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.mean is None:
            raise RuntimeError("scaler used before fit()")


class MinMaxScaler:
    """Scale features into [low, high] (demand datasets often use [0, 1])."""

    def __init__(self, low: float = 0.0, high: float = 1.0):
        if high <= low:
            raise ValueError("high must exceed low")
        self.low = low
        self.high = high
        self.data_min: np.ndarray | None = None
        self.data_max: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        self.data_min = values.min(axis=(0, 1))
        self.data_max = values.max(axis=(0, 1))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        span = np.where(self.data_max - self.data_min < 1e-12, 1.0, self.data_max - self.data_min)
        unit = (values - self.data_min) / span
        return unit * (self.high - self.low) + self.low

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        span = np.where(self.data_max - self.data_min < 1e-12, 1.0, self.data_max - self.data_min)
        unit = (values - self.low) / (self.high - self.low)
        return unit * span + self.data_min

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.data_min is None:
            raise RuntimeError("scaler used before fit()")


class IdentityScaler:
    """No-op scaler keeping the pipeline uniform."""

    def fit(self, values: np.ndarray) -> "IdentityScaler":
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        return values

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        return values

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return values
