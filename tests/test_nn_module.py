"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential


class _Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 2, rng=rng)

    def forward(self, x):
        return self.child(x @ self.weight)


class TestRegistration:
    def test_parameter_discovered(self, rng):
        toy = _Toy(rng)
        names = dict(toy.named_parameters())
        assert "weight" in names
        assert "child.weight" in names
        assert "child.bias" in names

    def test_parameters_list(self, rng):
        assert len(_Toy(rng).parameters()) == 3

    def test_num_parameters(self, rng):
        toy = _Toy(rng)
        assert toy.num_parameters() == 4 + 4 + 2

    def test_modules_iteration(self, rng):
        toy = _Toy(rng)
        assert len(list(toy.modules())) == 2

    def test_register_module_dynamic(self, rng):
        m = Module()
        m.register_module("dyn", Linear(2, 3, rng=rng))
        assert any(name.startswith("dyn.") for name, _ in m.named_parameters())


class TestModes:
    def test_train_eval_propagates(self, rng):
        toy = _Toy(rng)
        toy.eval()
        assert not toy.training
        assert not toy.child.training
        toy.train()
        assert toy.child.training

    def test_zero_grad(self, rng):
        toy = _Toy(rng)
        out = toy(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert toy.weight.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        a = _Toy(rng)
        b = _Toy(np.random.default_rng(999))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self, rng):
        toy = _Toy(rng)
        state = toy.state_dict()
        state["weight"][...] = 42.0
        assert not np.allclose(toy.weight.data, 42.0)

    def test_missing_key_raises(self, rng):
        toy = _Toy(rng)
        state = toy.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        toy = _Toy(rng)
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        toy = _Toy(rng)
        state = toy.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            toy.load_state_dict(state)


class TestSharedSubmodules:
    """Regression: a module reachable through two attribute paths (the
    TGCRN/TagSL shared time encoder) must be counted and stepped once."""

    def _shared(self, rng):
        inner = Linear(2, 2, rng=rng)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.direct = inner
                self.child = Module()
                self.child.nested = inner

        return Outer(), inner

    def test_parameters_deduplicated(self, rng):
        outer, inner = self._shared(rng)
        assert len(outer.parameters()) == 2  # weight + bias, once
        assert outer.num_parameters() == inner.num_parameters()

    def test_named_parameters_unique_paths(self, rng):
        outer, _ = self._shared(rng)
        names = [n for n, _ in outer.named_parameters()]
        assert len(names) == len(set(names)) == 2

    def test_modules_visits_shared_child_once(self, rng):
        outer, inner = self._shared(rng)
        visited = list(outer.modules())
        assert sum(1 for m in visited if m is inner) == 1

    def test_optimizer_steps_shared_parameter_once(self, rng):
        """With duplicates, Adam would apply two updates per step."""
        from repro.autodiff import Tensor
        from repro.nn import SGD
        import numpy as np

        outer, inner = self._shared(rng)
        opt = SGD(outer.parameters(), lr=1.0)
        out = outer.direct(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        before = inner.weight.data.copy()
        grad = inner.weight.grad.copy()
        opt.step()
        np.testing.assert_allclose(inner.weight.data, before - grad)


class TestModuleList:
    def test_registration_and_access(self, rng):
        layers = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(layers) == 2
        assert len(layers.parameters()) == 4
        assert layers[1] is list(layers)[1]

    def test_append(self, rng):
        layers = ModuleList()
        layers.append(Linear(2, 2, rng=rng))
        assert len(layers) == 1
        assert len(layers.parameters()) == 2


class TestSequential:
    def test_chains_modules_and_callables(self, rng):
        seq = Sequential(Linear(3, 4, rng=rng), lambda x: x.relu(), Linear(4, 2, rng=rng))
        out = seq(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(seq.parameters()) == 4
