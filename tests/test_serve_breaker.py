"""Circuit breaker state machine: closed → open → half-open → closed."""

import pytest

from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


def _breaker(clock, threshold=3, cooldown=10.0, probes=1, hooks=None):
    return CircuitBreaker(
        failure_threshold=threshold, cooldown=cooldown,
        half_open_probes=probes, clock=clock,
        on_transition=hooks.append if hooks is not None else None,
    )


class TestClosedState:
    def test_starts_closed_and_allows(self, clock):
        b = _breaker(clock)
        assert b.state == CLOSED and b.allow()

    def test_failures_below_threshold_stay_closed(self, clock):
        b = _breaker(clock, threshold=3)
        b.record_failure("one")
        b.record_failure("two")
        assert b.state == CLOSED and b.allow()

    def test_success_resets_consecutive_count(self, clock):
        b = _breaker(clock, threshold=2)
        b.record_failure("x")
        b.record_success()
        b.record_failure("y")
        assert b.state == CLOSED  # never two *consecutive* failures

    def test_threshold_trips_open(self, clock):
        b = _breaker(clock, threshold=2)
        b.record_failure("nan output")
        b.record_failure("nan output")
        assert b.state == OPEN
        assert not b.allow()


class TestOpenState:
    def test_blocks_until_cooldown(self, clock):
        b = _breaker(clock, threshold=1, cooldown=10.0)
        b.record_failure("boom")
        clock.advance(9.9)
        assert not b.allow()
        assert b.state == OPEN

    def test_cooldown_elapsed_goes_half_open(self, clock):
        b = _breaker(clock, threshold=1, cooldown=10.0)
        b.record_failure("boom")
        clock.advance(10.0)
        assert b.allow()  # the probe
        assert b.state == HALF_OPEN


class TestHalfOpenState:
    def test_probe_success_closes(self, clock):
        b = _breaker(clock, threshold=1, cooldown=1.0)
        b.record_failure("boom")
        clock.advance(2.0)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        b = _breaker(clock, threshold=1, cooldown=10.0)
        b.record_failure("boom")
        clock.advance(10.0)
        assert b.allow()
        b.record_failure("still broken")
        assert b.state == OPEN
        clock.advance(9.0)  # cooldown restarted at the probe failure
        assert not b.allow()
        clock.advance(1.0)
        assert b.allow() and b.state == HALF_OPEN

    def test_extra_traffic_waits_on_probe(self, clock):
        b = _breaker(clock, threshold=1, cooldown=1.0, probes=1)
        b.record_failure("boom")
        clock.advance(2.0)
        assert b.allow()       # probe slot taken
        assert not b.allow()   # everyone else keeps falling back
        assert b.state == HALF_OPEN

    def test_multiple_probe_slots(self, clock):
        b = _breaker(clock, threshold=1, cooldown=1.0, probes=2)
        b.record_failure("boom")
        clock.advance(2.0)
        assert b.allow() and b.allow()
        assert not b.allow()


class TestTransitionsRecord:
    def test_full_cycle_recorded_and_hooked(self, clock):
        hooks = []
        b = _breaker(clock, threshold=2, cooldown=5.0, hooks=hooks)
        b.record_failure("f1")
        b.record_failure("f2")
        clock.advance(5.0)
        b.allow()
        b.record_success()
        states = [(t.old, t.new) for t in b.transitions]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]
        assert hooks == b.transitions
        assert "f2" in b.transitions[0].reason
        assert all(t.ts == pytest.approx(clock.t if t.new != OPEN else 0.0)
                   for t in b.transitions)

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)
