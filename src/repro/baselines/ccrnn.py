"""CCRNN (Ye et al., AAAI 2021): coupled layer-wise graph convolution.

Each recurrent layer learns its *own* adjacency from per-layer node
embeddings; a coupling transform ties layer l+1's embedding to layer l's
(the layer-wise coupling mechanism bridging upper/lower adjacency
matrices).  Direct multi-horizon head, as in the original demand setup.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax, zeros
from ..nn import Linear, Module, ModuleList, Parameter, init
from .cells import DynamicGraphGRUCell


class CCRNN(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        embed_dim: int = 10,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.base_embedding = Parameter(init.normal((num_nodes, embed_dim), rng, std=1.0 / np.sqrt(embed_dim)))
        # Coupling maps deriving deeper-layer embeddings from the base.
        self.couplings = ModuleList(
            [Linear(embed_dim, embed_dim, rng=rng) for _ in range(num_layers - 1)]
        )
        dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        self.cells = ModuleList([DynamicGraphGRUCell(d, hidden_dim, hops=1, rng=rng) for d in dims])
        self.head = Linear(hidden_dim, horizon * out_dim, rng=rng)

    def layer_adjacencies(self, batch: int) -> list[Tensor]:
        adjacencies = []
        embedding = self.base_embedding
        for layer in range(self.num_layers):
            logits = (embedding @ embedding.T).relu()
            adjacency = softmax(logits, axis=-1)
            adjacencies.append(
                adjacency.unsqueeze(0).broadcast_to((batch, self.num_nodes, self.num_nodes))
            )
            if layer < self.num_layers - 1:
                embedding = self.couplings[layer](embedding).tanh()
        return adjacencies

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        adjacencies = self.layer_adjacencies(batch)
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            layer_input = x[:, t]
            new_hiddens = []
            for cell, hidden, adjacency in zip(self.cells, hiddens, adjacencies):
                layer_input = cell(layer_input, hidden, adjacency)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
        flat = self.head(hiddens[-1])
        out = flat.reshape(batch, self.num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
