"""From-scratch gradient tree boosting: GBDT (Friedman 2001) and an
XGBoost-style variant (Chen & Guestrin 2016).

Both boost *multi-output* regression trees under squared loss, mapping a
per-node feature vector (the node's recent history plus calendar
features) to all Q·d_out future values at once.  XGBoost differs from
plain GBDT by second-order leaf weights with L2 regularization ``lam``
and a minimum-gain threshold ``gamma`` — with squared loss the hessian is
one per sample, so the math stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.datasets import ForecastingTask
from ..data.windows import WindowSet


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    value: np.ndarray | None = None  # leaf prediction vector


class RegressionTree:
    """Exact greedy CART for vector targets.

    Split gain is the reduction of Σ_outputs sum-of-squares; leaf values
    are ``sum(residual) / (count + lam)`` which equals the sample mean
    when ``lam == 0`` (GBDT) and the XGBoost closed form otherwise.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 8, lam: float = 0.0, gamma: float = 0.0):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.lam = lam
        self.gamma = gamma
        self._root: _TreeNode | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        if features.ndim != 2 or targets.ndim != 2:
            raise ValueError("features and targets must be 2-D")
        self._root = self._build(features, targets, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() must run before predict")
        out = np.empty((features.shape[0], self._root_dim()))
        self._predict_into(self._root, features, np.arange(features.shape[0]), out)
        return out

    # ------------------------------------------------------------------ #

    def _root_dim(self) -> int:
        node = self._root
        while node.value is None:
            node = node.left
        return node.value.shape[0]

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        return targets.sum(axis=0) / (targets.shape[0] + self.lam)

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        count = features.shape[0]
        if depth >= self.max_depth or count < 2 * self.min_samples_leaf:
            return _TreeNode(value=self._leaf_value(targets))
        split = self._best_split(features, targets)
        if split is None:
            return _TreeNode(value=self._leaf_value(targets))
        feature, threshold = split
        mask = features[:, feature] <= threshold
        return _TreeNode(
            feature=feature,
            threshold=threshold,
            left=self._build(features[mask], targets[mask], depth + 1),
            right=self._build(features[~mask], targets[~mask], depth + 1),
        )

    def _best_split(self, features: np.ndarray, targets: np.ndarray) -> tuple[int, float] | None:
        count, num_features = features.shape
        total_sum = targets.sum(axis=0)
        # Parent score under the regularized objective: ||G||^2 / (n + λ).
        parent_score = float((total_sum ** 2).sum()) / (count + self.lam)
        best_gain, best = 0.0, None
        min_leaf = self.min_samples_leaf
        for f in range(num_features):
            order = np.argsort(features[:, f], kind="stable")
            sorted_vals = features[order, f]
            sorted_targets = targets[order]
            prefix = np.cumsum(sorted_targets, axis=0)
            left_counts = np.arange(1, count)
            # Candidate boundaries between distinct feature values only.
            distinct = sorted_vals[1:] != sorted_vals[:-1]
            valid = distinct & (left_counts >= min_leaf) & (count - left_counts >= min_leaf)
            if not valid.any():
                continue
            left_sum = prefix[:-1][valid]
            right_sum = total_sum - left_sum
            n_left = left_counts[valid].astype(float)
            n_right = count - n_left
            score = ((left_sum ** 2).sum(axis=1) / (n_left + self.lam)) + (
                (right_sum ** 2).sum(axis=1) / (n_right + self.lam)
            )
            gains = score - parent_score - self.gamma
            arg = int(np.argmax(gains))
            if gains[arg] > best_gain:
                best_gain = float(gains[arg])
                boundary = np.nonzero(valid)[0][arg]
                # Split on the left boundary value itself ("x <= v"): a
                # float midpoint of two nearly-equal values can round up
                # to the right value and produce an empty branch.
                best = (f, float(sorted_vals[boundary]))
        return best

    def _predict_into(self, node: _TreeNode, features: np.ndarray, index: np.ndarray, out: np.ndarray) -> None:
        if node.value is not None:
            out[index] = node.value
            return
        mask = features[index, node.feature] <= node.threshold
        self._predict_into(node.left, features, index[mask], out)
        self._predict_into(node.right, features, index[~mask], out)


class GradientBoosting:
    """Multi-output GBDT with shrinkage under squared loss."""

    def __init__(
        self,
        num_trees: int = 30,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 8,
        lam: float = 0.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.lam = lam
        self.gamma = gamma
        self.subsample = subsample
        self._rng = np.random.default_rng(seed)
        self._trees: list[RegressionTree] = []
        self._base: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoosting":
        self._base = targets.mean(axis=0)
        residual = targets - self._base
        self._trees = []
        count = features.shape[0]
        for _ in range(self.num_trees):
            if self.subsample < 1.0:
                pick = self._rng.random(count) < self.subsample
                if pick.sum() < 2 * self.min_samples_leaf:
                    pick = np.ones(count, dtype=bool)
            else:
                pick = slice(None)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                lam=self.lam,
                gamma=self.gamma,
            )
            tree.fit(features[pick], residual[pick])
            update = tree.predict(features)
            residual -= self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._base is None:
            raise RuntimeError("fit() must run before predict")
        out = np.tile(self._base, (features.shape[0], 1))
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out


def xgboost_model(num_trees: int = 30, learning_rate: float = 0.15, max_depth: int = 4, seed: int = 0) -> GradientBoosting:
    """XGBoost-flavoured booster: L2-regularized leaves, gain threshold,
    and row subsampling."""
    return GradientBoosting(
        num_trees=num_trees,
        learning_rate=learning_rate,
        max_depth=max_depth,
        lam=1.0,
        gamma=1e-3,
        subsample=0.8,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# task adapter
# ---------------------------------------------------------------------- #


def window_features(windows: WindowSet, steps_per_day: int) -> np.ndarray:
    """Per-node tabular features: flattened history + calendar encodings.

    Output shape (S*N, P*d + 3): history, slot sin/cos, weekend flag.
    """
    samples, history, num_nodes, dim = windows.inputs.shape
    flat = windows.inputs.transpose(0, 2, 1, 3).reshape(samples * num_nodes, history * dim)
    first_future = windows.time_indices[:, history]
    slot = (first_future % steps_per_day) / steps_per_day * 2 * np.pi
    weekend = ((first_future // steps_per_day) % 7 >= 5).astype(float)
    calendar = np.stack([np.sin(slot), np.cos(slot), weekend], axis=1)
    calendar = np.repeat(calendar, num_nodes, axis=0)
    return np.concatenate([flat, calendar], axis=1)


def window_targets(windows: WindowSet) -> np.ndarray:
    """Per-node flattened targets, shape (S*N, Q*d_out)."""
    samples, horizon, num_nodes, dim = windows.targets.shape
    return windows.targets.transpose(0, 2, 1, 3).reshape(samples * num_nodes, horizon * dim)


class BoostingForecaster:
    """Fit/evaluate adapter giving boosters the Trainer predict contract."""

    def __init__(self, model: GradientBoosting, steps_per_day: int):
        self.model = model
        self.steps_per_day = steps_per_day

    def fit(self, task: ForecastingTask) -> "BoostingForecaster":
        features = window_features(task.train, self.steps_per_day)
        targets = window_targets(task.train)
        self.model.fit(features, targets)
        return self

    def evaluate(self, task: ForecastingTask, split: str = "test") -> tuple[np.ndarray, np.ndarray]:
        windows = {"train": task.train, "val": task.val, "test": task.test}[split]
        features = window_features(windows, self.steps_per_day)
        flat = self.model.predict(features)
        samples = windows.inputs.shape[0]
        num_nodes = windows.inputs.shape[2]
        horizon, dim = windows.targets.shape[1], windows.targets.shape[3]
        scaled = flat.reshape(samples, num_nodes, horizon, dim).transpose(0, 2, 1, 3)
        return task.inverse_targets(scaled), task.inverse_targets(windows.targets)
