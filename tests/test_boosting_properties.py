"""Property-based tests (hypothesis) for the tree-boosting substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GradientBoosting, RegressionTree


def _data(seed, rows=80, features=3, outputs=2):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(rows, features))
    y = np.stack(
        [np.sin(3 * x[:, 0]) + x[:, 1], np.cos(2 * x[:, 1]) - x[:, 0]], axis=1
    )[:, :outputs]
    return x, y


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_tree_predictions_within_target_range(seed):
    """With lam=0 each leaf is a mean, so predictions are convex
    combinations of training targets — never outside their range."""
    x, y = _data(seed)
    tree = RegressionTree(max_depth=3, min_samples_leaf=4).fit(x, y)
    pred = tree.predict(x)
    assert (pred >= y.min(axis=0) - 1e-9).all()
    assert (pred <= y.max(axis=0) + 1e-9).all()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_deeper_trees_never_fit_worse_on_train(seed):
    x, y = _data(seed)
    shallow = RegressionTree(max_depth=1, min_samples_leaf=4).fit(x, y)
    deep = RegressionTree(max_depth=4, min_samples_leaf=4).fit(x, y)
    err_shallow = np.mean((shallow.predict(x) - y) ** 2)
    err_deep = np.mean((deep.predict(x) - y) ** 2)
    assert err_deep <= err_shallow + 1e-9


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_more_boosting_rounds_reduce_train_error(seed):
    x, y = _data(seed)
    few = GradientBoosting(num_trees=2, learning_rate=0.3, max_depth=2, seed=0).fit(x, y)
    many = GradientBoosting(num_trees=20, learning_rate=0.3, max_depth=2, seed=0).fit(x, y)
    err_few = np.mean((few.predict(x) - y) ** 2)
    err_many = np.mean((many.predict(x) - y) ** 2)
    assert err_many <= err_few + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    lam=st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=20, deadline=None)
def test_regularized_leaves_shrink_toward_zero(seed, lam):
    """For a pure-leaf tree, |prediction| decreases monotonically in λ."""
    rng = np.random.default_rng(seed)
    y = rng.normal(size=(20, 1)) + 3.0
    x = np.zeros((20, 1))
    base = RegressionTree(max_depth=1, min_samples_leaf=50, lam=0.0).fit(x, y).predict(x)
    shrunk = RegressionTree(max_depth=1, min_samples_leaf=50, lam=lam).fit(x, y).predict(x)
    assert abs(shrunk[0, 0]) <= abs(base[0, 0]) + 1e-12


def test_near_equal_feature_values_never_produce_nan_leaves():
    """Regression: a float midpoint of two nearly-equal adjacent values
    could round up to the larger value, emptying the right branch and
    yielding a 0/0 NaN leaf.  Splitting on the left boundary value fixes
    it; predictions must stay finite for adversarially close features."""
    base = 1.0
    eps = np.finfo(float).eps
    x = np.array([[base], [base + eps], [base + 2 * eps]] * 10)
    y = np.arange(30.0)[:, None]
    tree = RegressionTree(max_depth=5, min_samples_leaf=1).fit(x, y)
    assert np.isfinite(tree.predict(x)).all()


def test_tree_is_invariant_to_row_order():
    x, y = _data(0)
    perm = np.random.default_rng(1).permutation(len(x))
    a = RegressionTree(max_depth=3, min_samples_leaf=4).fit(x, y)
    b = RegressionTree(max_depth=3, min_samples_leaf=4).fit(x[perm], y[perm])
    probe = np.random.default_rng(2).uniform(-1, 1, size=(50, 3))
    np.testing.assert_allclose(a.predict(probe), b.predict(probe), atol=1e-9)
