"""Admission control: bounded depth, deadline shedding, micro-batching."""

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceededError,
    MicroBatcher,
    RequestQueue,
    ServiceOverloadedError,
)
from repro.serve.validation import ForecastRequest


def _request(rid="r", deadline=None, shape=(3, 4, 1), span=5):
    return ForecastRequest(
        window=np.zeros(shape),
        time_index=np.arange(span),
        request_id=rid,
        deadline=deadline,
    )


class TestRequestQueue:
    def test_fifo_round_trip(self):
        q = RequestQueue(max_depth=4)
        for i in range(3):
            q.put(_request(f"r{i}"), now=0.0)
        assert len(q) == 3
        admitted, shed = q.next_batch(8, now=0.0)
        assert [r.request_id for r in admitted] == ["r0", "r1", "r2"]
        assert shed == [] and len(q) == 0

    def test_overflow_raises_overloaded(self):
        q = RequestQueue(max_depth=2)
        q.put(_request("a"), now=0.0)
        q.put(_request("b"), now=0.0)
        with pytest.raises(ServiceOverloadedError) as err:
            q.put(_request("c"), now=0.0)
        assert err.value.depth == 2 and err.value.max_depth == 2
        assert "retry" in str(err.value)

    def test_dead_on_arrival_rejected(self):
        q = RequestQueue(max_depth=2)
        with pytest.raises(DeadlineExceededError):
            q.put(_request("late", deadline=5.0), now=5.0)
        assert len(q) == 0

    def test_expired_purged_to_admit_fresh(self):
        q = RequestQueue(max_depth=2)
        q.put(_request("a", deadline=1.0), now=0.0)
        q.put(_request("b", deadline=1.0), now=0.0)
        # Queue is full of soon-dead work; at t=2 a new request purges it.
        purged = q.put(_request("c"), now=2.0)
        assert [r.request_id for r in purged] == ["a", "b"]
        admitted, shed = q.next_batch(8, now=2.0)
        assert [r.request_id for r in admitted] == ["c"] and shed == []

    def test_next_batch_sheds_expired(self):
        q = RequestQueue(max_depth=8)
        q.put(_request("live"), now=0.0)
        q.put(_request("dying", deadline=1.0), now=0.0)
        admitted, shed = q.next_batch(8, now=2.0)
        assert [r.request_id for r in admitted] == ["live"]
        assert [r.request_id for r in shed] == ["dying"]

    def test_next_batch_respects_budget(self):
        q = RequestQueue(max_depth=8)
        for i in range(5):
            q.put(_request(f"r{i}"), now=0.0)
        admitted, _ = q.next_batch(2, now=0.0)
        assert len(admitted) == 2 and len(q) == 3

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestMicroBatcher:
    def test_groups_bound_by_budget(self):
        batcher = MicroBatcher(max_batch=2)
        groups = batcher.groups([_request(f"r{i}") for i in range(5)])
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_incompatible_shapes_never_stacked(self):
        batcher = MicroBatcher(max_batch=8)
        mixed = [_request("a"), _request("b", shape=(3, 5, 1)), _request("c")]
        groups = batcher.groups(mixed)
        assert sorted(len(g) for g in groups) == [1, 2]
        for group in groups:
            assert len({r.window.shape for r in group}) == 1

    def test_collate_stacks_model_inputs(self):
        batch = [_request("a"), _request("b")]
        x, t = MicroBatcher.collate(batch)
        assert x.shape == (2, 3, 4, 1)
        assert t.shape == (2, 5)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
