"""Evaluation metrics used across all experiment tables."""

from .errors import (
    MetricReport,
    NonFiniteMetricError,
    evaluate,
    horizon_report,
    mae,
    mape,
    mse,
    node_report,
    pcc,
    rmse,
)

__all__ = [
    "MetricReport",
    "NonFiniteMetricError",
    "evaluate",
    "horizon_report",
    "mae",
    "mape",
    "mse",
    "node_report",
    "pcc",
    "rmse",
]
