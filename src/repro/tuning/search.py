"""Hyper-parameter search over TGCRN/baseline configurations.

The paper's Fig. 9/10 sweeps are one-dimensional slices; this module
generalizes them: grid or random search over model and training knobs,
scored by validation MAE with the test metrics recorded for the winner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..data.datasets import ForecastingTask
from ..training.experiment import ExperimentResult, run_experiment
from ..training.trainer import TrainingConfig

#: Keys routed into TrainingConfig; everything else goes to the model.
_TRAINING_KEYS = {
    "epochs", "batch_size", "lr", "weight_decay", "lr_milestones", "lr_gamma",
    "patience", "grad_clip", "lambda_time", "loss",
}


@dataclass
class TrialResult:
    """One evaluated configuration."""

    params: dict[str, Any]
    val_mae: float
    result: ExperimentResult

    def __str__(self) -> str:
        settings = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"val MAE {self.val_mae:7.3f} | test MAE {self.result.overall.mae:7.3f} | {settings}"


@dataclass
class SearchReport:
    """All trials, sorted best-first by validation MAE."""

    trials: list[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials were run")
        return min(self.trials, key=lambda t: t.val_mae)

    def table(self) -> str:
        ordered = sorted(self.trials, key=lambda t: t.val_mae)
        return "\n".join(str(t) for t in ordered)


def grid_candidates(space: dict[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of a {param: values} space, stable ordering."""
    if not space:
        return [{}]
    keys = sorted(space)
    combos = itertools.product(*(space[k] for k in keys))
    return [dict(zip(keys, combo)) for combo in combos]


def random_candidates(
    space: dict[str, Sequence[Any]], num_samples: int, rng: np.random.Generator
) -> list[dict[str, Any]]:
    """Independent uniform draws from each parameter's candidate list."""
    keys = sorted(space)
    return [
        {k: space[k][int(rng.integers(0, len(space[k])))] for k in keys}
        for _ in range(num_samples)
    ]


def search(
    task: ForecastingTask,
    space: dict[str, Sequence[Any]],
    model_name: str = "tgcrn",
    strategy: str = "grid",
    num_samples: int = 10,
    base_config: TrainingConfig | None = None,
    base_model_kwargs: dict[str, Any] | None = None,
    hidden_dim: int = 16,
    seed: int = 0,
) -> SearchReport:
    """Evaluate configurations and rank them by validation MAE.

    Parameters named in ``_TRAINING_KEYS`` override the training config;
    all others are forwarded as model kwargs (e.g. ``node_dim``,
    ``time_dim``, ``alpha``, ``top_k``).
    """
    rng = np.random.default_rng(seed)
    if strategy == "grid":
        candidates = grid_candidates(space)
    elif strategy == "random":
        candidates = random_candidates(space, num_samples, rng)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; use 'grid' or 'random'")

    report = SearchReport()
    base_config = base_config or TrainingConfig(epochs=5, seed=seed)
    for params in candidates:
        config_overrides = {k: v for k, v in params.items() if k in _TRAINING_KEYS}
        model_overrides = {k: v for k, v in params.items() if k not in _TRAINING_KEYS}
        config = TrainingConfig(**{**base_config.__dict__, **config_overrides})
        model_kwargs = dict(base_model_kwargs or {})
        model_kwargs.update(model_overrides)
        result = run_experiment(
            model_name, task, config,
            model_kwargs=model_kwargs or None,
            hidden_dim=hidden_dim, seed=seed, keep_model=False,
        )
        val_mae = result.history.best_val_mae if result.history else result.overall.mae
        report.trials.append(TrialResult(params=params, val_mae=val_mae, result=result))
    return report
