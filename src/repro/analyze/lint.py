"""Repo-invariant AST lint with an extensible rule registry.

Rules encode invariants the rest of the codebase relies on:

======  ========  =====================================================
RL001   error     global ``np.random.*`` call (must use seeded Generators)
RL002   warning   ``default_rng()`` with no seed (nondeterministic)
RL003   error     raw artifact write outside ``repro.ioutil`` atomics
RL004   error     wall clock in injectable-clock-seam modules (serve/resilience)
RL005   error     bare ``except:``
RL006   warning   silent handler (``except ...: pass``)
RL007   warning   ``Tensor.data``/``.grad`` mutation outside framework modules
RL008   error     class attribute written both inside and outside its lock
RL009   error     ``time.time()`` outside the clock-seam modules (wall-clock
                  discipline: durations must use monotonic sources; real
                  timestamps carry an ``allow[RL009]`` note saying so)
RL010   error     hand-rolled retry loop (``for _ in range``/``while`` +
                  inline ``sleep`` around a ``try``) outside
                  ``repro.resilience`` — retries must use the
                  ``resilience.backoff`` seam
======  ========  =====================================================

A finding on line *L* is suppressed by ``# analyze: allow[RL00x]`` on *L*
or on the line directly above; ``allow[*]`` suppresses every rule.  New
rules register with :func:`rule` and are picked up by the CLI
automatically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from .findings import Finding

#: modules allowed to mutate Tensor.data / .grad (the framework itself:
#: optimizers, serialization, gradient checkers, checkpoint restore)
DATA_MUTATION_WHITELIST = (
    "autodiff/",
    "nn/",
    "verify/",
    "resilience/checkpoint.py",
    "analyze/shapes.py",  # the symbolic Tensor subclass is framework too
)

#: modules allowed to open files for writing directly (the atomic-write seam)
RAW_WRITE_WHITELIST = ("ioutil.py",)

#: modules with an injectable clock seam — wall-clock calls break testability
CLOCK_SEAM_PREFIXES = ("serve/", "resilience/")

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

_ALLOW_RE = re.compile(r"#\s*analyze:\s*allow\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class LintRule:
    rule_id: str
    name: str
    severity: str
    description: str
    fix_hint: str
    checker: Callable[["FileContext"], Iterator[tuple[int, str]]]


_REGISTRY: dict[str, LintRule] = {}


def rule(rule_id: str, name: str, severity: str, description: str, fix_hint: str):
    """Register a lint rule; the checker yields ``(line, message)`` pairs."""

    def register(checker: Callable[["FileContext"], Iterator[tuple[int, str]]]):
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule {rule_id}")
        _REGISTRY[rule_id] = LintRule(rule_id, name, severity, description, fix_hint, checker)
        return checker

    return register


def registered_rules() -> dict[str, LintRule]:
    return dict(_REGISTRY)


class FileContext:
    """One parsed file plus the path views the rules key their policy on."""

    def __init__(self, path: Path, display: str, pkg_rel: str, source: str):
        self.path = path
        self.display = display  # shown in findings (repo-relative when possible)
        self.pkg_rel = pkg_rel  # relative to the scanned tree (whitelist matching)
        self.source = source
        self.tree = ast.parse(source)
        self.lines = source.splitlines()

    def in_any(self, prefixes: Iterable[str]) -> bool:
        return any(
            self.pkg_rel == p or self.pkg_rel.startswith(p) or f"/{p}" in f"/{self.pkg_rel}"
            for p in prefixes
        )

    def allowed_rules_by_line(self) -> dict[int, set[str]]:
        allows: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                allows[lineno] = ids
        return allows


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.rand`` etc.)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


# --------------------------------------------------------------------- #
# RNG discipline
# --------------------------------------------------------------------- #


@rule(
    "RL001",
    "legacy-np-random",
    "error",
    "calls into the legacy global numpy RNG (np.random.rand, .seed, ...)",
    "thread a seeded np.random.Generator (see verify.determinism.named_rng) instead",
)
def _check_legacy_np_random(ctx: FileContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] not in ("default_rng", "Generator", "SeedSequence", "PCG64"):
                yield node.lineno, f"global numpy RNG call {dotted}()"


@rule(
    "RL002",
    "unseeded-default-rng",
    "warning",
    "default_rng() without a seed draws OS entropy and breaks reproducibility",
    "pass an explicit seed or derive one via verify.determinism.named_rng",
)
def _check_unseeded_default_rng(ctx: FileContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted.endswith("default_rng") and not node.args and not node.keywords:
            yield node.lineno, "default_rng() called without a seed"


# --------------------------------------------------------------------- #
# artifact writes
# --------------------------------------------------------------------- #


def _mode_is_write(call: ast.Call, position: int) -> bool:
    mode: ast.expr | None = None
    if len(call.args) > position:
        mode = call.args[position]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and ("w" in mode.value or "x" in mode.value)
    )


@rule(
    "RL003",
    "raw-artifact-write",
    "error",
    "artifact written without the atomic temp+fsync+rename protocol",
    "use ioutil.atomic_write / atomic_write_text / atomic_savez",
)
def _check_raw_artifact_write(ctx: FileContext) -> Iterator[tuple[int, str]]:
    if ctx.in_any(RAW_WRITE_WHITELIST):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open" and _mode_is_write(node, 1):
            yield node.lineno, "open(..., 'w') writes in place; a crash leaves a torn file"
        elif isinstance(func, ast.Attribute):
            if func.attr in ("write_text", "write_bytes"):
                yield node.lineno, f".{func.attr}() writes in place; a crash leaves a torn file"
            elif func.attr == "open" and _mode_is_write(node, 0):
                yield node.lineno, ".open('w') writes in place; a crash leaves a torn file"
            elif _dotted(func) in ("np.save", "np.savez", "np.savez_compressed"):
                yield node.lineno, f"{_dotted(func)}() writes in place; a crash leaves a torn file"


# --------------------------------------------------------------------- #
# clock discipline
# --------------------------------------------------------------------- #


@rule(
    "RL004",
    "wall-clock-in-clock-seam",
    "error",
    "wall-clock call in a module with an injectable clock seam",
    "take a clock callable (default time.monotonic) as a parameter, as CircuitBreaker does",
)
def _check_wall_clock(ctx: FileContext) -> Iterator[tuple[int, str]]:
    if not ctx.in_any(CLOCK_SEAM_PREFIXES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        parts = tuple(dotted.split(".")[-2:])
        if len(parts) == 2 and parts in _WALL_CLOCK_CALLS:
            yield node.lineno, f"direct wall-clock call {dotted}() bypasses the injectable clock"


@rule(
    "RL009",
    "wall-clock-latency",
    "error",
    "time.time() is non-monotonic (NTP steps, DST) and corrupts latency math",
    "use time.monotonic()/time.perf_counter() for durations; annotate genuine "
    "wall timestamps with '# analyze: allow[RL009]'",
)
def _check_wall_clock_latency(ctx: FileContext) -> Iterator[tuple[int, str]]:
    if ctx.in_any(CLOCK_SEAM_PREFIXES):
        return  # RL004 already polices these modules with a stricter rule
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if tuple(dotted.split(".")[-2:]) == ("time", "time"):
            yield node.lineno, (
                "time.time() in a potential latency path; use a monotonic "
                "source for durations or mark the call as a timestamp"
            )


# --------------------------------------------------------------------- #
# retry discipline
# --------------------------------------------------------------------- #

#: the package that owns the retry/backoff seam (exempt from RL010)
RETRY_SEAM_EXEMPT = ("resilience/",)


@rule(
    "RL010",
    "hand-rolled-retry-loop",
    "error",
    "retry loop sleeps inline instead of using the jittered-backoff seam; "
    "fixed delays synchronize retries into thundering herds and cannot be "
    "tested without real sleeping",
    "route the loop through resilience.backoff (retry_call, or Backoff's "
    "delay()/wait() with injected sleep/rng); annotate deliberate "
    "exceptions with '# analyze: allow[RL010]'",
)
def _check_hand_rolled_retry(ctx: FileContext) -> Iterator[tuple[int, str]]:
    if ctx.in_any(RETRY_SEAM_EXEMPT):
        return  # the seam itself
    seen: set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        sleeps = [
            child
            for child in ast.walk(node)
            if isinstance(child, ast.Call)
            and _dotted(child.func).split(".")[-1] == "sleep"
        ]
        if not sleeps:
            continue
        # A retry loop either swallows failures inline (try inside the
        # loop) or counts attempts (for ... in range(...)).  Plain
        # poll/wait loops — while + sleep with no exception handling —
        # are not retries and stay legal.
        has_try = any(isinstance(child, ast.Try) for child in ast.walk(node))
        counted = (
            isinstance(node, ast.For)
            and isinstance(node.iter, ast.Call)
            and _dotted(node.iter.func).split(".")[-1] == "range"
        )
        if not (has_try or counted):
            continue
        lineno = min(s.lineno for s in sleeps)
        if lineno in seen:
            continue
        seen.add(lineno)
        shape = "for-range" if counted else "while"
        yield lineno, (
            f"hand-rolled {shape} retry loop with inline sleep; use the "
            "resilience.backoff seam (jittered, injectable)"
        )


# --------------------------------------------------------------------- #
# exception hygiene
# --------------------------------------------------------------------- #


@rule(
    "RL005",
    "bare-except",
    "error",
    "bare except catches KeyboardInterrupt/SystemExit and hides real faults",
    "catch the narrowest exception type that the handler can actually handle",
)
def _check_bare_except(ctx: FileContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield node.lineno, "bare except:"


@rule(
    "RL006",
    "silent-except",
    "warning",
    "exception handler swallows the error without logging or re-raising",
    "log, annotate, or narrow the handler; if truly best-effort, add an allow comment saying why",
)
def _check_silent_except(ctx: FileContext) -> Iterator[tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            body = [s for s in node.body if not _is_docstring(s)]
            if body and all(
                isinstance(s, ast.Pass)
                or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant) and s.value.value is Ellipsis)
                for s in body
            ):
                kind = _dotted(node.type) if node.type is not None else "Exception"
                yield node.lineno, f"except {kind}: pass silently swallows the error"


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


# --------------------------------------------------------------------- #
# tensor state mutation
# --------------------------------------------------------------------- #


def _is_tensor_state_target(target: ast.expr) -> str | None:
    if isinstance(target, ast.Attribute) and target.attr in ("data", "grad"):
        return f"{_dotted(target)}"
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Attribute)
        and target.value.attr in ("data", "grad")
    ):
        return f"{_dotted(target.value)}[...]"
    return None


@rule(
    "RL007",
    "tensor-state-mutation",
    "warning",
    "writes Tensor.data/.grad in place outside framework modules, bypassing autodiff",
    "compute a new Tensor instead; in-place mutation invalidates recorded gradients",
)
def _check_tensor_state_mutation(ctx: FileContext) -> Iterator[tuple[int, str]]:
    if ctx.in_any(DATA_MUTATION_WHITELIST):
        return
    for node in ast.walk(ctx.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            described = _is_tensor_state_target(target)
            if described:
                yield node.lineno, f"in-place mutation of {described}"


# --------------------------------------------------------------------- #
# lock discipline
# --------------------------------------------------------------------- #


_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _lock_attrs_of(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                value = node.value
                dotted = _dotted(value.func) if isinstance(value, ast.Call) else ""
                if dotted.split(".")[-1] in _LOCK_FACTORIES or "lock" in target.attr.lower():
                    locks.add(target.attr)
    return locks


def _self_attr_writes(node: ast.AST, lock_attrs: set[str], depth: int, out: dict[str, dict[str, list[int]]]):
    """Collect self.<attr> writes, tracking whether a lock guards them."""
    for child in ast.iter_child_nodes(node):
        child_depth = depth
        if isinstance(child, ast.With):
            holds_lock = any(
                isinstance(item.context_expr, ast.Attribute)
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                and item.context_expr.attr in lock_attrs
                for item in child.items
            )
            if holds_lock:
                child_depth = depth + 1
        if isinstance(child, (ast.Assign, ast.AugAssign)) or (
            isinstance(child, ast.AnnAssign) and child.value is not None
        ):
            targets = child.targets if isinstance(child, ast.Assign) else [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in lock_attrs
                ):
                    bucket = out.setdefault(target.attr, {"locked": [], "unlocked": []})
                    bucket["locked" if depth > 0 else "unlocked"].append(child.lineno)
        _self_attr_writes(child, lock_attrs, child_depth, out)


@rule(
    "RL008",
    "unlocked-shared-write",
    "error",
    "instance attribute written both under a lock and without it — a data race",
    "take the lock on every write path (reads may stay lock-free only for atomic swaps)",
)
def _check_unlocked_shared_write(ctx: FileContext) -> Iterator[tuple[int, str]]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs_of(cls)
        if not lock_attrs:
            continue
        writes: dict[str, dict[str, list[int]]] = {}
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)) and method.name != "__init__":
                _self_attr_writes(method, lock_attrs, 0, writes)
        for attr, lines in sorted(writes.items()):
            if lines["locked"] and lines["unlocked"]:
                yield (
                    min(lines["unlocked"]),
                    f"{cls.name}.{attr} is written under {sorted(lock_attrs)} "
                    f"(line {min(lines['locked'])}) but also without it",
                )


# --------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------- #


#: directory names that never hold source (caches, VCS, envs, build output)
_NON_SOURCE_DIRS = {
    "__pycache__", ".git", ".hg", ".venv", "venv", "build", "dist",
    ".eggs", "node_modules", ".mypy_cache", ".pytest_cache", ".ruff_cache",
}


def _iter_py_files(paths: Sequence[str | Path]) -> Iterator[tuple[Path, Path]]:
    """Yield (file, scanned_top) pairs for every python file under paths.

    Skips ``__pycache__``/VCS/virtualenv/build directories and hidden
    files — bytecode caches and vendored envs are not our source.
    """
    for top in paths:
        top = Path(top)
        if top.is_file():
            yield top, top.parent
        else:
            for path in sorted(top.rglob("*.py")):
                rel = path.relative_to(top)
                if any(
                    part in _NON_SOURCE_DIRS or part.startswith(".")
                    for part in rel.parts[:-1]
                ):
                    continue
                if path.name.startswith("."):
                    continue
                yield path, top


def lint_paths(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    rules: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the registered AST rules over every ``.py`` file under ``paths``.

    ``root`` anchors finding locations (defaults to each file's own path);
    ``rules`` restricts to rule-id prefixes (e.g. ``["RL00", "RL1"]``).
    """
    selected = [
        r
        for r in _REGISTRY.values()
        if rules is None or any(r.rule_id.startswith(p) for p in rules)
    ]
    findings: list[Finding] = []
    for path, top in _iter_py_files(paths):
        display = str(path)
        if root is not None:
            try:
                display = path.resolve().relative_to(Path(root).resolve()).as_posix()
            except ValueError:
                display = str(path)
        pkg_rel = path.resolve().relative_to(top.resolve()).as_posix()
        source = path.read_text()
        try:
            ctx = FileContext(path, display, pkg_rel, source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule_id="RL000",
                    severity="warning",
                    location=f"{display}:{exc.lineno or 0}",
                    anchor=display,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        allows = ctx.allowed_rules_by_line()
        for lint_rule in selected:
            for lineno, message in lint_rule.checker(ctx):
                allowed = allows.get(lineno, set()) | allows.get(lineno - 1, set())
                if lint_rule.rule_id in allowed or "*" in allowed:
                    continue
                findings.append(
                    Finding(
                        rule_id=lint_rule.rule_id,
                        severity=lint_rule.severity,
                        location=f"{display}:{lineno}",
                        anchor=display,
                        message=message,
                        fix_hint=lint_rule.fix_hint,
                    )
                )
    return findings
