"""Event injection: disruptions and demand surges on generated datasets.

CPS operators care how a forecaster behaves around *irregular* events —
station closures, concerts, partial outages — which break the trend/
periodicity regularities TGCRN exploits.  These helpers inject such
events into an already-generated dataset (post-hoc, so the ground-truth
OD machinery stays intact) and record where they happened so evaluation
can split regular vs. disrupted windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .synthetic import SyntheticDataset


@dataclass(frozen=True)
class Event:
    """One injected event.

    ``kind`` is "closure" (flows forced toward zero) or "surge" (flows
    multiplied up); ``nodes`` lists affected stations; the event spans
    absolute steps [start, stop).
    """

    kind: str
    nodes: tuple[int, ...]
    start: int
    stop: int
    magnitude: float

    def overlaps(self, start: int, stop: int) -> bool:
        return self.start < stop and start < self.stop


@dataclass
class EventLog:
    """All injected events, queryable by window."""

    events: list[Event] = field(default_factory=list)

    def disturbed_mask(self, time_indices: np.ndarray) -> np.ndarray:
        """Boolean (S,) mask: does window s overlap any event?"""
        starts = time_indices[:, 0]
        stops = time_indices[:, -1] + 1
        mask = np.zeros(len(time_indices), dtype=bool)
        for event in self.events:
            mask |= (starts < event.stop) & (event.start < stops)
        return mask


def inject_events(
    dataset: SyntheticDataset,
    rng: np.random.Generator,
    num_closures: int = 2,
    num_surges: int = 2,
    duration: int = 8,
    surge_magnitude: float = 2.5,
    closure_floor: float = 0.05,
    start_range: tuple[int, int] | None = None,
) -> EventLog:
    """Mutate ``dataset.values`` in place with random events; return the log.

    Closures scale the affected nodes' flows down to ``closure_floor``;
    surges multiply them by ``surge_magnitude``.  ``start_range``
    restricts event start steps to [lo, hi) — e.g. the test period only;
    by default events never start inside the first duration-sized prefix.
    """
    total, num_nodes, _ = dataset.values.shape
    if total <= 2 * duration:
        raise ValueError("dataset too short for the requested event duration")
    lo, hi = start_range if start_range is not None else (duration, total - duration)
    if not 0 <= lo < hi <= total - duration:
        raise ValueError(f"invalid start_range {start_range} for length {total}")
    log = EventLog()
    for kind, count, factor in (
        ("closure", num_closures, closure_floor),
        ("surge", num_surges, surge_magnitude),
    ):
        for _ in range(count):
            start = int(rng.integers(lo, hi))
            stop = start + duration
            size = max(1, num_nodes // 5)
            nodes = tuple(int(n) for n in rng.choice(num_nodes, size=size, replace=False))
            dataset.values[start:stop, list(nodes), :] *= factor
            log.events.append(Event(kind, nodes, start, stop, factor))
    return log


def split_regular_disrupted(
    prediction: np.ndarray,
    target: np.ndarray,
    time_indices: np.ndarray,
    log: EventLog,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Partition evaluation arrays into (regular, disrupted) window sets."""
    mask = log.disturbed_mask(time_indices)
    regular = (prediction[~mask], target[~mask])
    disrupted = (prediction[mask], target[mask])
    return regular, disrupted
