"""Time-aware Graph Convolutional Recurrent Network (TGCRN, §III-C).

Encoder–decoder of GCGRU layers sharing a single TagSL graph generator and
time encoder.  At every step of both encoder and decoder, each layer feeds
its input node-state to TagSL to get the time-aware adjacency Â^t, then
runs the node-adaptive GCGRU update (Fig. 7).

The decoder mirrors the encoder (initial hidden = final encoder hidden)
and decodes autoregressively: the first future input is the last observed
frame, subsequent inputs are the model's own predictions, and an output
layer maps the top hidden state to the forecast.  ``use_encoder_decoder=
False`` reproduces the *w/o enc-dec* ablation (direct multi-step output
through a fully connected head).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, stack, zeros
from ..nn import Linear, Module, ModuleList
from .gcgru import GCGRUCell
from .tagsl import TagSL
from .time_encoding import TimeEncoder, make_time_encoder


class TGCRN(Module):
    """Multi-step spatio-temporal forecaster (the paper's full model).

    Parameters
    ----------
    num_nodes:
        N, number of spatially correlated series.
    in_dim / out_dim:
        Feature dimensionality of inputs (d) and forecasts.
    horizon:
        Q, number of future steps.
    hidden_dim:
        GCGRU hidden units (paper: 64).
    num_layers:
        Encoder/decoder depth (paper: 2).
    node_dim / time_dim:
        d_ν and d_τ embedding sizes (paper: 64/32 on HZMetro).
    steps_per_day:
        |T|, slots in the discretized day (e.g. 96 for 15-minute data).
    time_encoder_kind:
        "embedding" (paper), "time2vec", or "ctr" (Table VII rows).
    alpha:
        Saturation factor of the periodic discriminant (paper: 0.3).
    norm:
        Normalization of A^t before convolution ("softmax" default).
    use_trend / use_pdf / static_graph / use_encoder_decoder:
        Ablation switches mapping to Table VII variants.
    graph_update_interval:
        Recompute the time-aware adjacency only every k steps, reusing
        the cached graph in between.  This implements the paper's stated
        future work ("the changes in correlations between time steps are
        often small, making it unnecessary to calculate them so
        frequently", §IV-C3); k = 1 is the paper's model.
    scheduled_sampling:
        Probability of feeding the decoder the *ground-truth* previous
        frame instead of its own prediction during training (DCRNN-style
        curriculum).  0 disables it (the paper's setup).
    """

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        node_dim: int = 64,
        time_dim: int = 32,
        steps_per_day: int = 96,
        time_encoder_kind: str = "embedding",
        alpha: float = 0.3,
        cheb_k: int = 2,
        norm: str = "softmax",
        use_trend: bool = True,
        use_pdf: bool = True,
        static_graph: bool = False,
        use_encoder_decoder: bool = True,
        trend_mode: str = "scalar",
        graph_update_interval: int = 1,
        scheduled_sampling: float = 0.0,
        top_k: int | None = None,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        if graph_update_interval < 1:
            raise ValueError("graph_update_interval must be >= 1")
        if not 0.0 <= scheduled_sampling <= 1.0:
            raise ValueError("scheduled_sampling must be a probability")
        self.num_nodes = num_nodes
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.norm = norm
        self.use_encoder_decoder = use_encoder_decoder
        self.graph_update_interval = graph_update_interval
        self.scheduled_sampling = scheduled_sampling
        self._sampling_rng = np.random.default_rng(rng.integers(0, 2**63))

        self.time_encoder: TimeEncoder = make_time_encoder(
            time_encoder_kind, steps_per_day, time_dim, rng=rng
        )
        self.tagsl = TagSL(
            num_nodes,
            node_dim,
            self.time_encoder,
            alpha=alpha,
            use_trend=use_trend,
            use_pdf=use_pdf,
            static_only=static_graph,
            trend_mode=trend_mode,
            top_k=top_k,
            rng=rng,
        )
        embed_dim = node_dim + self.time_encoder.dim

        encoder_dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        self.encoder_cells = ModuleList(
            [GCGRUCell(d, hidden_dim, embed_dim, cheb_k, rng=rng) for d in encoder_dims]
        )
        if use_encoder_decoder:
            decoder_dims = [out_dim] + [hidden_dim] * (num_layers - 1)
            self.decoder_cells = ModuleList(
                [GCGRUCell(d, hidden_dim, embed_dim, cheb_k, rng=rng) for d in decoder_dims]
            )
            self.output_layer = Linear(hidden_dim, out_dim, rng=rng)
        else:
            self.output_layer = Linear(hidden_dim, horizon * out_dim, rng=rng)

    # ------------------------------------------------------------------ #

    def blended_embedding(self, time_indices: np.ndarray) -> Tensor:
        """Ê^t = [E_ν ; E_{τ,t}] (Eq. 12), shape (B, N, d_ν + d_τ).

        The *w/o tagsl* ablation (``static_graph=True``) replaces TagSL
        with AGCRN's self-learning mechanism, which is time-free — so the
        blend degenerates to the node embedding alone there (the time
        half is zeroed to keep weight-pool shapes identical).
        """
        batch = len(np.atleast_1d(time_indices))
        node = self.tagsl.node_embedding.unsqueeze(0).broadcast_to(
            (batch, self.num_nodes, self.tagsl.node_dim)
        )
        if self.tagsl.static_only:
            time = zeros(batch, self.num_nodes, self.time_encoder.dim)
        else:
            time = self.time_encoder(np.atleast_1d(time_indices))  # (B, d_τ)
            time = time.unsqueeze(1).broadcast_to((batch, self.num_nodes, self.time_encoder.dim))
        return concat([node, time], axis=-1)

    def _step(
        self,
        cells: ModuleList,
        x: Tensor,
        hiddens: list[Tensor],
        time_indices: np.ndarray,
        graph_cache: list | None = None,
        refresh_graphs: bool = True,
    ) -> list[Tensor]:
        """Advance all layers one time step; returns new hidden list.

        When ``refresh_graphs`` is false and ``graph_cache`` holds the
        per-layer adjacencies of an earlier step, those are reused — the
        lazy-update mode of §IV-C3's future-work discussion.
        """
        embed = self.blended_embedding(time_indices)
        new_hiddens = []
        layer_input = x
        for layer, (cell, hidden) in enumerate(zip(cells, hiddens)):
            if refresh_graphs or graph_cache is None or graph_cache[layer] is None:
                adjacency = self.tagsl.normalized(layer_input, time_indices, mode=self.norm)
                if graph_cache is not None:
                    graph_cache[layer] = adjacency.detach()
            else:
                adjacency = graph_cache[layer]
            layer_input = cell(layer_input, hidden, adjacency, embed)
            new_hiddens.append(layer_input)
        return new_hiddens

    def _init_hiddens(self, batch: int) -> list[Tensor]:
        return [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]

    def forward(
        self, x: Tensor, time_indices: np.ndarray, targets: Tensor | None = None
    ) -> Tensor:
        """Forecast Q future frames.

        Parameters
        ----------
        x:
            (B, P, N, in_dim) historical observations.
        time_indices:
            (B, P+Q) absolute time-step index of every input *and* future
            frame (future timestamps are known at prediction time).
        targets:
            Optional (B, Q, N, out_dim) ground-truth futures, consumed
            only when ``scheduled_sampling > 0`` during training.

        Returns
        -------
        Tensor
            (B, Q, N, out_dim) multi-step forecast.
        """
        time_indices = np.asarray(time_indices)
        batch, history, _, _ = x.shape
        if time_indices.shape != (batch, history + self.horizon):
            raise ValueError(
                f"time_indices must be (B, P+Q) = ({batch}, {history + self.horizon}), "
                f"got {time_indices.shape}"
            )
        hiddens = self._init_hiddens(batch)
        interval = self.graph_update_interval
        cache: list = [None] * self.num_layers
        for t in range(history):
            hiddens = self._step(
                self.encoder_cells, x[:, t], hiddens, time_indices[:, t],
                graph_cache=cache, refresh_graphs=(t % interval == 0),
            )

        if not self.use_encoder_decoder:
            flat = self.output_layer(hiddens[-1])  # (B, N, Q*out_dim)
            out = flat.reshape(batch, self.num_nodes, self.horizon, self.out_dim)
            return out.transpose(0, 2, 1, 3)

        decoder_input = x[:, history - 1, :, : self.out_dim]
        cache = [None] * self.num_layers
        outputs = []
        for q in range(self.horizon):
            step_times = time_indices[:, history + q]
            hiddens = self._step(
                self.decoder_cells, decoder_input, hiddens, step_times,
                graph_cache=cache, refresh_graphs=(q % interval == 0),
            )
            prediction = self.output_layer(hiddens[-1])  # (B, N, out_dim)
            outputs.append(prediction)
            decoder_input = prediction
            if (
                self.training
                and self.scheduled_sampling > 0.0
                and targets is not None
                and self._sampling_rng.random() < self.scheduled_sampling
            ):
                decoder_input = targets[:, q]
        return stack(outputs, axis=1)
