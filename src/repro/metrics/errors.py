"""Evaluation metrics (§IV-A-3): MAE, MSE, RMSE, MAPE, PCC.

MAPE is masked — following the metro-forecasting convention, targets
whose magnitude falls below ``mape_threshold`` are excluded so near-zero
night-time flows do not dominate the percentage error.  PCC is the
Pearson correlation between flattened predictions and targets (NYC
demand benchmarks report it; higher is better).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class NonFiniteMetricError(ValueError):
    """A metric received NaN/Inf values.

    Raised instead of silently propagating NaN into reports: a NaN MAE in
    a benchmark table is indistinguishable from a typo, while this error
    names the offending array and counts the bad entries, so a diverged
    model (or corrupted prediction file) fails loudly at the metric
    boundary.
    """

    def __init__(self, name: str, array: np.ndarray):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        self.name = name
        self.bad_count = bad
        super().__init__(
            f"{name} contains {bad} non-finite value(s) out of {np.size(array)}; "
            "refusing to compute metrics on NaN/Inf inputs "
            "(diverged model output or corrupted data?)"
        )


def _require_finite(prediction: np.ndarray, target: np.ndarray) -> None:
    for name, array in (("prediction", prediction), ("target", target)):
        if not np.all(np.isfinite(array)):
            raise NonFiniteMetricError(name, np.asarray(array))


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    _require_finite(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def mse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    _require_finite(prediction, target)
    return float(np.mean((prediction - target) ** 2))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(prediction, target)))


def mape(prediction: np.ndarray, target: np.ndarray, threshold: float = 1.0) -> float:
    """Masked mean absolute percentage error, in percent."""
    _require_finite(prediction, target)
    mask = np.abs(target) >= threshold
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs(prediction[mask] - target[mask]) / np.abs(target[mask])) * 100.0)


def pcc(prediction: np.ndarray, target: np.ndarray) -> float:
    """Pearson correlation coefficient over all elements."""
    _require_finite(prediction, target)
    p = prediction.reshape(-1)
    t = target.reshape(-1)
    p_std = p.std()
    t_std = t.std()
    if p_std < 1e-12 or t_std < 1e-12:
        return 0.0
    return float(np.mean((p - p.mean()) * (t - t.mean())) / (p_std * t_std))


@dataclass(frozen=True)
class MetricReport:
    """All paper metrics for one (prediction, target) pair."""

    mae: float
    mse: float
    rmse: float
    mape: float
    pcc: float

    def as_dict(self) -> dict[str, float]:
        return {"MAE": self.mae, "MSE": self.mse, "RMSE": self.rmse, "MAPE": self.mape, "PCC": self.pcc}

    def __str__(self) -> str:
        return (
            f"MAE {self.mae:.4f} | RMSE {self.rmse:.4f} | MAPE {self.mape:.2f}% "
            f"| MSE {self.mse:.4f} | PCC {self.pcc:.4f}"
        )


def evaluate(prediction: np.ndarray, target: np.ndarray, mape_threshold: float = 1.0) -> MetricReport:
    """Compute the full metric set."""
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    return MetricReport(
        mae=mae(prediction, target),
        mse=mse(prediction, target),
        rmse=rmse(prediction, target),
        mape=mape(prediction, target, threshold=mape_threshold),
        pcc=pcc(prediction, target),
    )


def horizon_report(
    prediction: np.ndarray, target: np.ndarray, mape_threshold: float = 1.0
) -> list[MetricReport]:
    """Per-horizon metrics for (S, Q, N, d) arrays — Table IV's 15/30/45/60
    minute columns and Fig. 8's multi-step curves."""
    if prediction.ndim < 2:
        raise ValueError("expected at least (samples, horizon, ...) arrays")
    return [
        evaluate(prediction[:, q], target[:, q], mape_threshold=mape_threshold)
        for q in range(prediction.shape[1])
    ]


def node_report(
    prediction: np.ndarray, target: np.ndarray, mape_threshold: float = 1.0
) -> list[MetricReport]:
    """Per-node metrics for (S, Q, N, d) arrays.

    Useful for spotting stations a model systematically misses (busy hub
    vs quiet terminus); not a paper table, but standard diagnostic fare.
    """
    if prediction.ndim < 3:
        raise ValueError("expected (samples, horizon, nodes, ...) arrays")
    return [
        evaluate(prediction[:, :, n], target[:, :, n], mape_threshold=mape_threshold)
        for n in range(prediction.shape[2])
    ]
