"""Tests for optimizers, schedule, and gradient clipping."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mse_loss
from repro.nn import SGD, Adam, AdamW, MultiStepLR, Parameter, clip_grad_norm


def _quadratic_minimize(optimizer_factory, steps=300):
    """Minimize ||w - target||^2; returns final distance."""
    target = np.array([3.0, -2.0, 0.5])
    w = Parameter(np.zeros(3))
    opt = optimizer_factory([w])
    for _ in range(steps):
        opt.zero_grad()
        loss = mse_loss(w, Tensor(target))
        loss.backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestConvergence:
    def test_sgd(self):
        assert _quadratic_minimize(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum(self):
        assert _quadratic_minimize(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam(self):
        assert _quadratic_minimize(lambda p: Adam(p, lr=0.05)) < 1e-3

    def test_adamw(self):
        assert _quadratic_minimize(lambda p: AdamW(p, lr=0.05, weight_decay=1e-4)) < 1e-2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestWeightDecay:
    def test_sgd_decay_shrinks_weights(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 10.0

    def test_adamw_decouples_decay(self):
        """AdamW decays weights even when the gradient is zero."""
        w = Parameter(np.array([10.0]))
        opt = AdamW([w], lr=0.1, weight_decay=0.1)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] == pytest.approx(10.0 * (1 - 0.1 * 0.1))

    def test_none_grad_skipped(self):
        w = Parameter(np.array([1.0]))
        opt = Adam([w], lr=0.1)
        opt.step()  # no grad set; should not crash or move
        assert w.data[0] == 1.0


class TestMultiStepLR:
    def test_paper_schedule(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-3)
        sched = MultiStepLR(opt, milestones=[5, 20], gamma=0.3)
        for epoch in range(1, 25):
            sched.step()
            if epoch < 5:
                assert opt.lr == pytest.approx(1e-3)
            elif epoch < 20:
                assert opt.lr == pytest.approx(1e-3 * 0.3)
            else:
                assert opt.lr == pytest.approx(1e-3 * 0.09)

    def test_current_lr_property(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-2)
        sched = MultiStepLR(opt, milestones=[1], gamma=0.5)
        assert sched.current_lr == 1e-2
        sched.step()
        assert sched.current_lr == 5e-3


class TestClipGradNorm:
    def test_large_gradient_clipped(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_small_gradient_untouched(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 0.01)
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, 0.01)

    def test_none_grads_ignored(self):
        w = Parameter(np.zeros(4))
        assert clip_grad_norm([w], max_norm=1.0) == 0.0
