"""Op tracer: counts, timing, nesting, Chrome export, disabled-is-free."""

import json

import numpy as np
import pytest

import importlib

from repro.autodiff import Tensor, softmax

# ``repro.autodiff`` re-exports a ``tensor()`` convenience function that
# shadows the submodule attribute, so fetch the module itself explicitly.
tensor_mod = importlib.import_module("repro.autodiff.tensor")
from repro.obs import is_tracing, trace
from repro.obs.trace import _closure_op_name


class TestOpCounts:
    def test_counts_and_bytes_per_op(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 4)), requires_grad=True)
        with trace() as tr:
            c = a @ b
            d = c @ b
            _ = (d + a).sum()
        assert tr.stats["matmul"].calls == 2
        assert tr.stats["add"].calls == 1
        assert tr.stats["sum"].calls == 1
        # each matmul output is 4x4 float64 = 128 bytes
        assert tr.stats["matmul"].bytes_allocated == 2 * 128
        assert tr.graph_nodes == 4

    def test_counts_cover_unpatched_module_ops(self):
        """concat/softmax can't be method-patched; _make still counts them."""
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        with trace() as tr:
            _ = softmax(a, axis=-1)
        assert tr.stats["softmax"].calls == 1

    def test_composites_bill_their_primitives(self):
        a = Tensor(np.ones((3, 3)), requires_grad=True)
        with trace() as tr:
            a.mean().backward()
        assert "mean" not in tr.stats
        assert tr.stats["sum"].calls == 1
        assert tr.stats["mul"].calls == 1

    def test_backward_attribution(self):
        a = Tensor(np.random.default_rng(0).normal(size=(8, 8)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(8, 8)), requires_grad=True)
        with trace() as tr:
            (a @ b).tanh().sum().backward()
        for op in ("matmul", "tanh", "sum"):
            assert tr.stats[op].backward_calls == 1
            assert tr.stats[op].backward_seconds >= 0.0
        assert tr.backward_passes == 1
        assert tr.backward_total_seconds > 0.0

    def test_forward_timing_recorded(self):
        a = Tensor(np.random.default_rng(0).normal(size=(64, 64)), requires_grad=True)
        with trace() as tr:
            _ = a @ a
        s = tr.stats["matmul"]
        assert s.forward_calls == 1
        assert s.forward_seconds > 0.0
        assert s.forward_self_seconds <= s.forward_seconds + 1e-12


class TestNesting:
    def test_inner_sees_only_its_region(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with trace() as outer:
            _ = a @ a
            with trace() as inner:
                _ = a + a
            _ = a * a
        assert set(inner.stats) == {"add"}
        assert {"matmul", "add", "mul"} <= set(outer.stats)
        assert outer.stats["matmul"].calls == 1

    def test_nested_exit_keeps_outer_active(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with trace() as outer:
            with trace():
                pass
            assert is_tracing()
            _ = a + a
        assert outer.stats["add"].calls == 1
        assert not is_tracing()


class TestDisabledIsFree:
    def test_everything_restored_on_exit(self):
        original_matmul = Tensor.__matmul__
        original_backward = Tensor.backward
        with trace():
            assert Tensor.__matmul__ is not original_matmul
            assert tensor_mod._MAKE_HOOK is not None
            assert tensor_mod._BACKWARD_OP_HOOK is not None
        assert Tensor.__matmul__ is original_matmul
        assert Tensor.backward is original_backward
        assert tensor_mod._MAKE_HOOK is None
        assert tensor_mod._BACKWARD_OP_HOOK is None

    def test_restored_after_exception(self):
        original = Tensor.__add__
        with pytest.raises(RuntimeError):
            with trace():
                raise RuntimeError("boom")
        assert Tensor.__add__ is original
        assert tensor_mod._MAKE_HOOK is None

    def test_ops_outside_trace_not_recorded(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with trace() as tr:
            pass
        _ = a @ a
        assert "matmul" not in tr.stats


class TestChromeTrace:
    def test_export_is_valid_chrome_json(self, tmp_path):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with trace() as tr:
            (a @ a).sum().backward()
        path = tr.export_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "expected at least one event"
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["name"], str)
        assert {"matmul", "sum", "backward"} <= {e["name"] for e in events}

    def test_event_cap_counts_drops(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with trace(max_events=3) as tr:
            for _ in range(10):
                a = a + 1.0
        assert len(tr.events) == 3
        assert tr.events_dropped > 0


class TestReporting:
    def test_table_ranks_matmul_hot(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(128, 128)), requires_grad=True)
        b = Tensor(rng.normal(size=(128, 128)), requires_grad=True)
        with trace() as tr:
            loss = ((a @ b) @ (a @ b)).sum() + a.sum() * 2.0
            loss.backward()
        top_name, _ = tr.hot_ops(1)[0]
        assert top_name == "matmul"
        table = tr.table(5)
        assert "matmul" in table.splitlines()[2]  # first data row

    def test_summary_round_trips_as_json(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with trace() as tr:
            (a * a).sum().backward()
        summary = json.loads(json.dumps(tr.summary()))
        assert summary["graph_nodes"] == 2
        assert summary["backward_passes"] == 1
        assert set(summary["ops"]) == {"mul", "sum"}


class TestClosureNames:
    def test_dunder_and_plain_names(self):
        def op():
            def backward_fn(grad):  # noqa: ARG001
                pass

            return backward_fn

        assert _closure_op_name(op()) == "op"
        assert _closure_op_name(None) == "leaf"

    def test_known_tensor_closures(self):
        a = Tensor(np.ones(2), requires_grad=True)
        out = a + a
        assert _closure_op_name(out._backward_fn) == "add"
        out = a @ Tensor(np.ones(2))
        assert _closure_op_name(out._backward_fn) == "matmul"
