"""ReplicaSupervisor state machine on a fake handle and a fake clock.

Every transition in the lifecycle diagram (supervisor.py docstring) is
driven explicitly: ready, ready-deadline kill, heartbeat staleness with
TERM→KILL escalation, backoff-scheduled restarts, crash-loop parking,
operator unpark, and both shutdown flavors.  No real processes, no real
time.
"""

import pytest

from repro.resilience import Backoff, ReplicaSupervisor, RestartPolicy
from repro.resilience.supervisor import (
    BACKOFF,
    PARKED,
    RUNNING,
    STARTING,
    STOPPED,
    TERMINATING,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeHandle:
    """Scriptable replica handle satisfying the supervisor protocol."""

    def __init__(self, *, ready=True, alive=True):
        self.ready = ready
        self.alive = alive
        self.last_heartbeat = None
        self.pid = 4242
        self.calls = []
        self.ignore_term = False
        self.pumps = 0

    def is_alive(self):
        return self.alive

    def poll_transport(self):
        self.pumps += 1

    def respawn(self):
        self.calls.append("respawn")
        self.alive = True
        self.ready = False
        self.pid += 1

    def terminate_process(self):
        self.calls.append("term")
        if not self.ignore_term:
            self.alive = False

    def kill_process(self):
        self.calls.append("kill")
        self.alive = False


class RecordingLogger:
    def __init__(self):
        self.events = []

    def log(self, event, **fields):
        self.events.append({"event": event, **fields})


def _supervisor(policy=None, backoff=None, clock=None, logger=None):
    clock = clock or FakeClock()
    policy = policy or RestartPolicy(max_restarts=2, window_s=10.0,
                                     ready_deadline_s=1.0,
                                     heartbeat_timeout_s=0.5,
                                     term_deadline_s=0.3)
    backoff = backoff or Backoff(base=0.1, factor=2.0, jitter=0.0)
    return ReplicaSupervisor(policy, backoff, clock=clock,
                             logger=logger), clock


class TestLifecycle:
    def test_register_adopts_current_readiness(self):
        sup, _ = _supervisor()
        sup.register("up", FakeHandle(ready=True))
        sup.register("booting", FakeHandle(ready=False))
        assert sup.states() == {"up": RUNNING, "booting": STARTING}

    def test_starting_becomes_running_when_ready(self):
        ups = []
        sup, clock = _supervisor()
        handle = FakeHandle(ready=False)
        sup.register("r0", handle, on_up=ups.append)
        sup.poll(clock())
        assert sup.state("r0") == STARTING
        handle.ready = True
        sup.poll(clock())
        assert sup.state("r0") == RUNNING
        assert ups == ["r0"]

    def test_poll_pumps_handle_transport_every_round(self):
        sup, clock = _supervisor()
        handle = FakeHandle()
        sup.register("r0", handle)
        for _ in range(3):
            sup.poll(clock())
        assert handle.pumps == 3

    def test_ready_deadline_kills_and_reschedules(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)
        handle = FakeHandle(ready=False)
        sup.register("r0", handle)
        clock.advance(1.5)  # past ready_deadline_s=1.0
        sup.poll(clock())
        assert handle.calls == ["kill"]
        assert sup.state("r0") == BACKOFF
        events = [e["event"] for e in logger.events]
        assert "replica_start_timeout" in events
        assert "replica_restart_scheduled" in events

    def test_death_notifies_and_schedules_backoff_restart(self):
        downs = []
        sup, clock = _supervisor()
        handle = FakeHandle()
        sup.register("r0", handle, on_down=lambda rid, why: downs.append((rid, why)))
        handle.alive = False
        sup.poll(clock())
        assert sup.state("r0") == BACKOFF
        assert downs == [("r0", "process exited")]
        # first restart: attempt 0 -> base delay 0.1, not a tick earlier
        clock.advance(0.05)
        sup.poll(clock())
        assert sup.state("r0") == BACKOFF and "respawn" not in handle.calls
        clock.advance(0.1)
        sup.poll(clock())
        assert handle.calls[-1] == "respawn"
        assert sup.state("r0") == STARTING
        assert sup.restart_count("r0") == 1

    def test_restart_delays_follow_the_backoff_schedule(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)
        handle = FakeHandle()
        sup.register("r0", handle)
        delays = []
        for _ in range(2):
            handle.alive = False
            handle.ready = False
            sup.poll(clock())
            sched = [e for e in logger.events
                     if e["event"] == "replica_restart_scheduled"][-1]
            delays.append(sched["delay_s"])
            clock.advance(sched["delay_s"] + 0.01)
            sup.poll(clock())          # respawn
            handle.ready = True
            sup.poll(clock())          # back to running
        assert delays == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_stale_heartbeat_terms_then_kill_escalates(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)
        handle = FakeHandle()
        handle.ignore_term = True  # wedged child that also ignores SIGTERM
        sup.register("r0", handle)
        handle.last_heartbeat = clock()
        clock.advance(0.6)  # past heartbeat_timeout_s=0.5
        sup.poll(clock())
        assert sup.state("r0") == TERMINATING
        assert handle.calls == ["term"] and handle.alive
        clock.advance(0.4)  # past term_deadline_s=0.3
        sup.poll(clock())
        assert handle.calls == ["term", "kill"]
        assert sup.state("r0") == BACKOFF
        events = [e["event"] for e in logger.events]
        assert events.count("replica_unresponsive") == 1
        assert events.count("replica_kill_escalated") == 1

    def test_compliant_term_skips_the_kill(self):
        sup, clock = _supervisor()
        handle = FakeHandle()
        sup.register("r0", handle)
        handle.last_heartbeat = clock()
        clock.advance(0.6)
        sup.poll(clock())  # TERM; FakeHandle honors it
        sup.poll(clock())
        assert handle.calls == ["term"]
        assert sup.state("r0") == BACKOFF


class TestCrashLoopParking:
    def test_exceeding_the_restart_budget_parks(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)  # max_restarts=2 / 10s
        handle = FakeHandle()
        sup.register("r0", handle)
        for _ in range(3):  # third down in the window crosses the budget
            handle.alive = False
            handle.ready = False
            sup.poll(clock())
            if sup.state("r0") == PARKED:
                break
            clock.advance(1.0)
            sup.poll(clock())  # respawn
            handle.ready = True
            sup.poll(clock())
        assert sup.is_parked("r0")
        parked = [e for e in logger.events if e["event"] == "replica_parked"]
        assert len(parked) == 1
        assert parked[0]["restarts_in_window"] == 3
        # parked replicas are inert: polling never respawns them
        respawns = handle.calls.count("respawn")
        clock.advance(100.0)
        sup.poll(clock())
        assert handle.calls.count("respawn") == respawns

    def test_slow_crashes_outside_the_window_never_park(self):
        sup, clock = _supervisor()  # window_s=10
        handle = FakeHandle()
        sup.register("r0", handle)
        for _ in range(5):
            handle.alive = False
            handle.ready = False
            sup.poll(clock())
            assert sup.state("r0") == BACKOFF
            clock.advance(11.0)  # next death lands in a fresh window
            sup.poll(clock())
            handle.ready = True
            sup.poll(clock())
            assert sup.state("r0") == RUNNING

    def test_unpark_clears_history_and_restarts(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)
        handle = FakeHandle()
        sup.register("r0", handle)
        for _ in range(3):
            handle.alive = False
            handle.ready = False
            sup.poll(clock())
            clock.advance(1.0)
            sup.poll(clock())
            handle.ready = True
            sup.poll(clock())
        assert sup.is_parked("r0")
        sup.unpark("r0", clock())
        assert sup.state("r0") == BACKOFF
        sup.poll(clock())  # not_before == now: restart immediately
        assert sup.state("r0") == STARTING
        assert any(e["event"] == "replica_unparked" for e in logger.events)


class TestShutdown:
    def test_shutdown_terms_then_kills_survivors(self):
        logger = RecordingLogger()
        sup, clock = _supervisor(logger=logger)
        polite = FakeHandle()
        stubborn = FakeHandle()
        stubborn.ignore_term = True
        sup.register("polite", polite)
        sup.register("stubborn", stubborn)
        sleeps = []
        result = sup.shutdown(timeout=0.1, sleep=sleeps.append)
        assert result == {"terminated": 2, "killed": 1}
        assert polite.calls == ["term"]
        assert stubborn.calls == ["term", "kill"]
        assert sup.states() == {"polite": STOPPED, "stubborn": STOPPED}
        assert sleeps, "the grace loop should actually wait"
        assert any(e["event"] == "supervisor_shutdown" for e in logger.events)
        sup.poll(clock())  # a stopped supervisor is inert
        assert polite.calls == ["term"]

    def test_disable_stands_down_without_touching_children(self):
        sup, clock = _supervisor()
        handle = FakeHandle()
        sup.register("r0", handle)
        sup.disable()
        handle.alive = False
        sup.poll(clock())
        assert handle.calls == []  # no respawn, no kill: caller owns teardown
        assert sup.state("r0") == RUNNING  # state frozen where it stood
