"""EN rules: which models the capture/replay engine can compile.

The execution engine (:mod:`repro.autodiff.engine`, docs/engine.md)
captures a training step once and replays it with precompiled kernels.
Graphs it cannot mirror bitwise raise ``PlanUnsupported`` at capture and
run eager forever — correct, but silently forfeiting the speedup.  This
lint makes that visible at analysis time instead of in production logs:
it drives one real forward + loss + backward through an
:class:`~repro.autodiff.engine.ExecutionEngine` per model and reports

* **EN001** (warning) — the step could not be captured (or was demoted
  after replay guard failures); the finding carries the engine's reason
  so the unsupported op is named, not guessed.

A clean model produces no findings: capture succeeds and one validation
replay passes its guards.
"""

from __future__ import annotations

import numpy as np

from .findings import Finding

__all__ = ["check_engine_support"]


def check_engine_support(
    model,
    *,
    history: int,
    horizon: int,
    num_nodes: int,
    in_dim: int,
    out_dim: int,
    batch: int = 2,
    model_name: str | None = None,
    seed: int = 0,
) -> list[Finding]:
    """Report signatures of ``model``'s training step the engine cannot compile.

    Runs capture plus one validation replay of ``forward -> mae_loss ->
    backward`` on synthetic data (same dims the shape checker uses).  The
    model's parameters and training flag are left as found; gradients
    written by the probe are cleared.
    """
    from ..autodiff import Tensor, mae_loss
    from ..autodiff.engine import ExecutionEngine, discover_rngs

    name = model_name or type(model).__name__
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, history, num_nodes, in_dim))
    y = rng.standard_normal((batch, horizon, num_nodes, out_dim))
    time_indices = (
        np.arange(history + horizon)[None, :] + np.arange(batch)[:, None] + 3
    )

    def step(x_t, y_t, t):
        loss = mae_loss(model(x_t, t), y_t)
        loss.backward()
        return loss

    engine = ExecutionEngine(f"lint:{name}", rngs=discover_rngs(model))
    was_training = getattr(model, "training", None)
    if hasattr(model, "train"):
        model.train(True)
    try:
        engine.run(step, Tensor(x), Tensor(y), time_indices)  # capture
        engine.run(step, Tensor(x), Tensor(y), time_indices)  # validate replay
    finally:
        if was_training is not None and hasattr(model, "train"):
            model.train(was_training)
        if hasattr(model, "zero_grad"):
            model.zero_grad()

    findings: list[Finding] = []
    for entry in engine.describe()["plans"]:
        if not (entry["eager_only"] or entry["failures"]):
            continue
        reason = entry.get("reason") or "replay guard failure"
        findings.append(
            Finding(
                rule_id="EN001",
                severity="warning",
                location=f"model:{name}",
                anchor=f"model:{name}",
                message=(
                    f"training step is not engine-compilable for signature "
                    f"{entry['signature']}: {reason}"
                ),
                fix_hint=(
                    "route the op through the autodiff vocabulary the engine "
                    "mirrors (docs/engine.md) or accept eager execution for "
                    "this model"
                ),
            )
        )
    return findings
