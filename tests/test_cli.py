"""Tests for the command-line interface (in-process, tiny configs)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


_DS = ["--dataset", "hzmetro", "--nodes", "6", "--days", "6"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "hzmetro"
        assert args.model == "tgcrn"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "mars_metro"])


class TestCommands:
    def test_inspect(self, capsys):
        assert main(["inspect", *_DS]) == 0
        out = capsys.readouterr().out
        assert "hzmetro" in out
        assert "Monday" in out

    def test_train_and_evaluate_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "model.npz")
        code = main([
            "train", *_DS, "--epochs", "1", "--hidden", "8",
            "--node-dim", "4", "--time-dim", "4", "--save", ck,
        ])
        assert code == 0
        train_out = capsys.readouterr().out
        assert "checkpoint written" in train_out

        code = main([
            "evaluate", *_DS, "--hidden", "8", "--node-dim", "4",
            "--time-dim", "4", "--checkpoint", ck,
        ])
        assert code == 0
        eval_out = capsys.readouterr().out
        assert "test: MAE" in eval_out
        # The evaluated MAE must match what training reported (exact reload).
        train_line = next(l for l in train_out.splitlines() if l.startswith("tgcrn on"))
        eval_line = next(l for l in eval_out.splitlines() if l.startswith("test:"))
        train_mae = float(train_line.split("MAE ")[1].split(" ")[0])
        eval_mae = float(eval_line.split("MAE ")[1].split(" ")[0])
        assert eval_mae == pytest.approx(train_mae, rel=1e-6)

    def test_train_baseline(self, capsys):
        assert main(["train", *_DS, "--model", "ha"]) == 0
        assert "ha on hzmetro" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main([
            "compare", *_DS, "--epochs", "1", "--hidden", "8",
            "--models", "ha,tgcrn", "--node-dim", "4", "--time-dim", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-horizon MAE" in out
        assert "best baseline" in out
