"""The paper's experimental protocol (§IV-A-4), encoded as tests.

These pin the defaults so a refactor cannot silently drift away from the
published setup.
"""

import numpy as np
import pytest

from repro.core import TGCRN
from repro.core.tagsl import TagSL
from repro.training import Trainer, TrainingConfig


class TestOptimizationProtocol:
    def test_defaults_match_section_iv_a_4(self):
        config = TrainingConfig()
        assert config.lr == 1e-3                      # "initial learning rate is 1e-3"
        assert config.weight_decay == 1e-4            # "L2 penalty is 1e-4"
        assert config.lr_milestones == (5, 20, 40, 70, 90)
        assert config.lr_gamma == 0.3                 # "decays by 0.3"
        assert config.batch_size == 16                # "batch size is 16"
        assert config.patience == 15                  # "patience reaches 15"
        assert config.loss == "mae"                   # Eq. 18 is MAE

    def test_discrepancy_gamma_is_half_history(self, tiny_task):
        """'Empirically, we set γ_Δ half of the length of the input'."""
        trainer = Trainer(TrainingConfig())
        model = TGCRN(
            num_nodes=tiny_task.num_nodes, in_dim=tiny_task.in_dim,
            out_dim=tiny_task.out_dim, horizon=tiny_task.horizon,
            hidden_dim=8, num_layers=1, node_dim=4, time_dim=4,
            steps_per_day=tiny_task.steps_per_day, rng=np.random.default_rng(0),
        )
        learner = trainer._make_discrepancy(model, tiny_task, np.random.default_rng(0), None)
        assert learner is not None
        assert learner.adjacent_range == max(1, tiny_task.history // 2)


class TestModelDefaults:
    def test_tagsl_alpha_default(self, rng):
        from repro.core import DiscreteTimeEmbedding

        tagsl = TagSL(4, 4, DiscreteTimeEmbedding(24, 4, rng=rng), rng=rng)
        assert tagsl.alpha == 0.3                     # "saturate factor ... 0.3"

    def test_tgcrn_capacity_defaults(self, rng):
        model = TGCRN(num_nodes=4, in_dim=2, out_dim=2, horizon=2,
                      steps_per_day=24, rng=rng)
        assert model.hidden_dim == 64                 # "hidden units ... 64"
        assert model.num_layers == 2                  # "layers ... 2"
        # HZMetro paper config: d_v 64, d_t 32
        assert model.tagsl.node_dim == 64
        assert model.time_encoder.dim == 32

    def test_tgcrn_default_norm_is_softmax(self, rng):
        model = TGCRN(num_nodes=4, in_dim=2, out_dim=2, horizon=2,
                      steps_per_day=24, rng=rng)
        assert model.norm == "softmax"                # Eq. 11 "e.g., softmax"

    def test_paper_scale_parameter_count_magnitude(self):
        """TGCRN(d_v=64, d_t=32) at HZMetro scale must land in the paper's
        ballpark (16.7M reported; our deduplicated count ~14M)."""
        model = TGCRN(num_nodes=80, in_dim=2, out_dim=2, horizon=4,
                      hidden_dim=64, num_layers=2, node_dim=64, time_dim=32,
                      steps_per_day=73, rng=np.random.default_rng(0))
        assert 10_000_000 < model.num_parameters() < 20_000_000

    def test_small_config_parameter_count_magnitude(self):
        """TGCRN(16,16) should land near the paper's 5.6M."""
        model = TGCRN(num_nodes=80, in_dim=2, out_dim=2, horizon=4,
                      hidden_dim=64, num_layers=2, node_dim=16, time_dim=16,
                      steps_per_day=73, rng=np.random.default_rng(0))
        assert 3_000_000 < model.num_parameters() < 8_000_000


class TestMetricsProtocol:
    def test_mape_is_percentage(self):
        from repro.metrics import mape

        assert mape(np.array([1.1]), np.array([1.0])) == pytest.approx(10.0, rel=1e-6)

    def test_evaluation_in_original_units(self, tiny_task):
        """Predictions must be inverse-transformed before metrics — the
        scaled-space MAE would be ~100x smaller for metro flows."""
        trainer = Trainer(TrainingConfig())
        model = TGCRN(
            num_nodes=tiny_task.num_nodes, in_dim=tiny_task.in_dim,
            out_dim=tiny_task.out_dim, horizon=tiny_task.horizon,
            hidden_dim=8, num_layers=1, node_dim=4, time_dim=4,
            steps_per_day=tiny_task.steps_per_day, rng=np.random.default_rng(0),
        )
        _, target = trainer.predict(model, tiny_task, "val")
        raw_scale = np.abs(tiny_task.inverse_targets(tiny_task.val.targets)).mean()
        assert np.abs(target).mean() == pytest.approx(raw_scale, rel=1e-9)
        assert raw_scale > 5.0  # original units, not z-scores
