"""Algorithm 1: Time-distance Sampling.

Given a batch of discretized time windows ``X_τ ∈ Z^{B×T}`` (row *i* holds
the consecutive slot indices covered by sample *i*), draw for every row an
anchor slot, an *adjacent* slot (within ±γ_Δ of the anchor in the same
row), a *mid-distance* slot (same row, outside the adjacent band), and a
*distant* slot (random position in a different row).  The paper sets
γ_Δ to half the input window length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TimeDistanceSamples:
    """Output of Algorithm 1 (all arrays have shape (B,)).

    ``*_values`` hold slot indices (inputs for the time encoder);
    ``*_positions`` hold absolute in-window offsets used for F_dist.
    """

    anchor_values: np.ndarray
    adjacent_values: np.ndarray
    mid_values: np.ndarray
    distant_values: np.ndarray
    anchor_positions: np.ndarray
    adjacent_positions: np.ndarray
    mid_positions: np.ndarray
    distant_positions: np.ndarray
    distant_rows: np.ndarray


def sample_time_distances(
    time_windows: np.ndarray,
    rng: np.random.Generator,
    adjacent_range: int | None = None,
    mid_range: int | None = None,
) -> TimeDistanceSamples:
    """Run Algorithm 1 on a batch of time windows.

    Parameters
    ----------
    time_windows:
        Integer array (B, T) of consecutive slot indices per sample.
    rng:
        Random generator (determinism in tests/benchmarks).
    adjacent_range:
        γ_Δ; defaults to max(1, T // 2) per the paper ("half of the length
        of the input time steps").
    mid_range:
        γ_◇; defaults to T (the full window).  Mid-distance picks are
        constrained to lie *outside* the adjacent band.

    Notes
    -----
    With B == 1 there is no "other row" to draw a distant sample from; the
    farthest in-row slot is used instead so the loss stays defined.
    """
    windows = np.asarray(time_windows)
    if windows.ndim != 2:
        raise ValueError(f"time_windows must be 2-D (B, T), got shape {windows.shape}")
    batch, length = windows.shape
    if length < 2:
        raise ValueError("windows must cover at least two time steps")
    gamma_adj = adjacent_range if adjacent_range is not None else max(1, length // 2)
    gamma_adj = min(gamma_adj, length - 1)
    gamma_mid = mid_range if mid_range is not None else length
    if gamma_mid <= gamma_adj:
        gamma_mid = gamma_adj + 1

    anchor_pos = rng.integers(0, length, size=batch)

    adjacent_pos = np.empty(batch, dtype=np.int64)
    mid_pos = np.empty(batch, dtype=np.int64)
    distant_pos = np.empty(batch, dtype=np.int64)
    distant_row = np.empty(batch, dtype=np.int64)

    columns = np.arange(length)
    for i in range(batch):
        a = anchor_pos[i]
        # adjacent: within ±γ_Δ, excluding the anchor itself
        band = columns[(np.abs(columns - a) <= gamma_adj) & (columns != a)]
        adjacent_pos[i] = rng.choice(band)
        # mid-distance: outside the adjacent band, within ±γ_◇
        outside = columns[(np.abs(columns - a) > gamma_adj) & (np.abs(columns - a) <= gamma_mid)]
        if outside.size == 0:
            # Degenerate window (band covers everything): farthest column.
            mid_pos[i] = int(np.argmax(np.abs(columns - a)))
        else:
            mid_pos[i] = rng.choice(outside)
        # distant: any slot of a different sample
        if batch > 1:
            row = rng.integers(0, batch - 1)
            distant_row[i] = row if row < i else row + 1
        else:
            distant_row[i] = i
        distant_pos[i] = rng.integers(0, length)

    return TimeDistanceSamples(
        anchor_values=windows[np.arange(batch), anchor_pos],
        adjacent_values=windows[np.arange(batch), adjacent_pos],
        mid_values=windows[np.arange(batch), mid_pos],
        distant_values=windows[distant_row, distant_pos],
        anchor_positions=anchor_pos,
        adjacent_positions=adjacent_pos,
        mid_positions=mid_pos,
        distant_positions=distant_pos,
        distant_rows=distant_row,
    )
