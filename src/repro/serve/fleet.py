"""Sharded, replicated serving fleet: failure containment above one server.

:class:`~repro.serve.server.ForecastServer` contains faults *inside* one
process; this module contains the loss of whole replicas.  The node set
is partitioned across **shards** (graph-partition-aware — see
:mod:`repro.graph.partition` — so the adjacency mass lost to shard
boundaries is minimized), each shard runs **R replicas** of a
:class:`ForecastServer` over that node subset, and a
:class:`ForecastFleet` router in front provides:

* **scatter/gather** — one full-graph request fans out into one
  sub-request per shard (window sliced to the shard's nodes) and the
  per-shard forecasts are reassembled into the full answer;
* **consistent-hash routing** — a :class:`ConsistentHashRing` per shard
  maps each request to a primary replica with a deterministic failover
  order; adding/removing a replica moves only ~1/R of the keys;
* **per-replica circuit breakers** — transport-level
  (:class:`~.breaker.CircuitBreaker`) on the router side, independent of
  each server's internal model-health breaker: a crashed or timing-out
  replica stops receiving traffic until a half-open probe succeeds;
* **bounded retries with jittered backoff** — failed dispatches are
  rescheduled through the :class:`~repro.resilience.backoff.Backoff`
  seam (delays are absolute ``not_before`` times on the injected clock,
  so nothing sleeps inside the router);
* **hedged requests** — a sub-request outstanding longer than
  ``hedge_after`` is duplicated to the next replica in the ring and the
  first answer wins (late losers are counted, not served);
* **deadline budget propagation** — the front-door deadline flows into
  every shard sub-request (minus a gather margin), so replica queues
  shed doomed work themselves and the router sheds whatever remains at
  the fleet deadline — every admitted request is *answered or shed*,
  never silently dropped;
* **backpressure** — per-shard outstanding work (queued + in flight)
  above ``backpressure_limit`` sheds new requests at admission with a
  structured :class:`FleetOverloadedError`;
* **rolling N-1 reloads** — :meth:`ForecastFleet.rolling_reload` swaps
  checkpoints one replica at a time (drain → verify → swap) and
  *refuses* any step that would drop the last available replica of a
  shard, with a structured ``fleet_reload_refused`` record.

Wrong answers are structurally impossible at this layer: every
prediction either comes from a replica's validated model output or is
the explicitly-marked historical-average fallback; a request that cannot
be answered in budget gets an explicit ``source="shed"`` response.

The router is a synchronous core (:meth:`submit` / :meth:`process_once`)
driven deterministically by tests on an injected clock; :meth:`start`
merely pumps it from a worker thread, exactly like ``ForecastServer``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.historical import HistoricalAverage
from ..graph.partition import NodePartition, partition_nodes
from ..obs import MetricsRegistry, SLOMonitor
from ..obs.spans import finish_span, start_span
from ..resilience.backoff import Backoff
from .breaker import OPEN, CircuitBreaker
from .queueing import DeadlineExceededError, ServiceOverloadedError
from .server import ForecastServer
from .validation import InvalidRequestError, RequestSpec, validate_request


def _lockorder_checkpoint(label: str) -> None:
    """Fault-injection seam for the lock-order sanitizer.

    :class:`repro.analyze.lockorder.LockOrderSanitizer` hangs its
    ``checkpoint`` on the :mod:`threading` module when installed; chaos
    entry points call it so "lock held across an injection point" is a
    recorded violation.  ``getattr`` keeps serve/ free of any analyze/
    import — this is a no-op outside sanitized runs.
    """
    hook = getattr(threading, "_repro_lockorder_checkpoint", None)
    if hook is not None:
        hook(label)


class FleetOverloadedError(ServiceOverloadedError):
    """Admission shed by fleet backpressure: a shard's pipeline is full.

    Carries ``shard_id`` (the saturated shard, or ``None`` when the
    fleet is draining) on top of the base depth/max_depth fields.
    """

    def __init__(self, depth: int, max_depth: int, shard_id: int | None = None,
                 detail: str = ""):
        self.shard_id = shard_id
        if shard_id is not None and not detail:
            detail = f"shard {shard_id} saturated"
        super().__init__(depth, max_depth, detail=detail)


class ReplicaDownError(RuntimeError):
    """Dispatch hit a replica whose process is gone (crash containment)."""

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        super().__init__(f"replica {replica_id} is down")


class ConsistentHashRing:
    """Consistent hashing over replica ids with virtual nodes.

    ``owner(key)`` is the first virtual node clockwise from the key's
    hash; ``successors(key)`` yields every distinct replica in ring
    order starting there — the deterministic failover chain.  With
    ``vnodes`` virtual nodes per replica, adding or removing one replica
    moves only ~1/|replicas| of the key space (asserted by
    ``test_serve_fleet``), so retries, hedges, and warm caches stay
    stable across membership changes.
    """

    def __init__(self, members=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._ring: list[tuple[int, str]] = []
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")

    def add(self, member: str) -> None:
        if any(m == member for _, m in self._ring):
            raise ValueError(f"member {member!r} already in the ring")
        for v in range(self.vnodes):
            self._ring.append((self._hash(f"{member}#{v}"), member))
        self._ring.sort()

    def remove(self, member: str) -> None:
        before = len(self._ring)
        self._ring = [(h, m) for h, m in self._ring if m != member]
        if len(self._ring) == before:
            raise KeyError(member)

    @property
    def members(self) -> list[str]:
        return sorted({m for _, m in self._ring})

    def owner(self, key: str) -> str:
        return self.successors(key)[0]

    def successors(self, key: str) -> list[str]:
        """Every distinct member, in ring order from ``key``'s position."""
        if not self._ring:
            raise KeyError("ring is empty")
        h = self._hash(key)
        start = 0
        for i, (vh, _) in enumerate(self._ring):
            if vh >= h:
                start = i
                break
        ordered: list[str] = []
        for i in range(len(self._ring)):
            member = self._ring[(start + i) % len(self._ring)][1]
            if member not in ordered:
                ordered.append(member)
        return ordered


class Replica:
    """One replica backend plus the router-side view of it.

    ``server`` is either an in-process :class:`ForecastServer`
    (``transport="thread"``) or a
    :class:`~repro.serve.proc.ProcReplicaClient` fronting a child
    process (``transport="process"``) — both speak the same contract,
    so the router never branches on which it holds.

    ``killed`` models a crashed process: dispatches raise
    :class:`ReplicaDownError`, the router stops pumping it, and whatever
    it held is failed over.  ``paused`` models a wedged worker (alive,
    accepting work, answering nothing) — the router only discovers it
    through timeouts and hedges.  ``reloading`` marks a replica
    temporarily out of rotation during a rolling reload.
    """

    def __init__(self, replica_id: str, shard_id: int, server,
                 breaker: CircuitBreaker):
        self.id = replica_id
        self.shard_id = shard_id
        self.server = server
        self.breaker = breaker  # router-side transport breaker
        self.killed = False
        self.paused = False
        self.reloading = False

    @property
    def available(self) -> bool:
        """In rotation for routing and for the N-1 reload invariant."""
        return not self.killed and not self.reloading

    def kill(self) -> None:
        """Crash the replica (queued work is lost).

        Thread transport simulates the crash; process transport delivers
        a real ``SIGKILL`` mid-whatever-the-child-was-doing.  Either
        way the backend's queue view is aborted so span trees of
        requests the replica dies holding are closed as ``canceled`` —
        the router's sweep owns the failover for those sub-requests.
        """
        _lockorder_checkpoint(f"replica.kill:{self.id}")
        self.killed = True
        kill_process = getattr(self.server, "kill_process", None)
        if kill_process is not None:
            kill_process()
        self.server.abort(reason=f"replica {self.id} killed")

    def revive(self) -> None:
        respawn = getattr(self.server, "respawn", None)
        if respawn is not None and not self.server.is_alive():
            respawn()
            self.server.wait_ready()
        self.killed = False

    def pause(self) -> None:
        """Wedge the worker: accepts submits, answers nothing.

        Process transport wedges the *child* for real — it stops
        heartbeating too, so the supervisor's watchdog (not just router
        timeouts) sees it.
        """
        _lockorder_checkpoint(f"replica.pause:{self.id}")
        self.paused = True
        wedge = getattr(self.server, "inject_wedge", None)
        if wedge is not None:
            wedge()

    def resume(self) -> None:
        unwedge = getattr(self.server, "inject_unwedge", None)
        if unwedge is not None:
            unwedge()
        self.paused = False

    def submit(self, payload, now: float, parent_span=None) -> str:
        if self.killed:
            raise ReplicaDownError(self.id)
        return self.server.submit(payload, now, parent_span=parent_span)


@dataclass
class Shard:
    """One node partition cell and its replica set."""

    shard_id: int
    nodes: np.ndarray
    replicas: list[Replica] = field(default_factory=list)
    ring: ConsistentHashRing | None = None

    @property
    def available_replicas(self) -> list[Replica]:
        return [r for r in self.replicas if r.available]


@dataclass
class FleetResponse:
    """One answered (or shed) fleet request, with per-shard provenance.

    ``source`` is ``"model"`` (every shard answered from its model),
    ``"mixed"`` (some shards fell back), ``"historical_average"`` (no
    shard answered from a model), or ``"shed"`` (deadline expired;
    ``prediction`` is ``None``).  ``shard_sources`` maps shard id to
    that shard's source so degraded regions are attributable.
    """

    request_id: str
    prediction: np.ndarray | None
    source: str = "model"
    degraded: bool = False
    reason: str | None = None
    latency_ms: float = 0.0
    deadline_missed: bool = False
    shard_sources: dict = field(default_factory=dict)
    retries: int = 0
    hedged: bool = False
    metadata: dict = field(default_factory=dict)


@dataclass
class _SubState:
    """Router-side progress of one shard's slice of one fleet request."""

    shard_id: int
    status: str = "pending"      # pending | inflight | done | failed
    attempts: int = 0
    not_before: float = 0.0
    tried: list = field(default_factory=list)
    sub_id: str | None = None
    hedge_id: str | None = None
    replica: str | None = None
    hedge_replica: str | None = None
    dispatched_at: float | None = None
    hedged: bool = False
    prediction: np.ndarray | None = None
    source: str | None = None
    reason: str | None = None
    spans: dict = field(default_factory=dict)  # sub_id -> dispatch span

    @property
    def open(self) -> bool:
        return self.status in ("pending", "inflight")


@dataclass
class _FleetEntry:
    """One admitted fleet request being scattered/gathered."""

    request_id: str
    window: np.ndarray
    time_index: np.ndarray
    deadline: float | None
    received_at: float
    metadata: dict
    subs: dict = field(default_factory=dict)  # shard_id -> _SubState
    root_span: object = None
    retries: int = 0
    hedged: bool = False
    fallback: np.ndarray | None = None  # lazily-computed full HA forecast


class ForecastFleet:
    """Router + shards + replicas: the fleet front door.

    Parameters
    ----------
    task:
        The full-graph :class:`~repro.data.datasets.ForecastingTask`;
        source of the request spec, the node set, and the fleet-level
        historical-average fallback.
    model_factory:
        ``model_factory(sub_task, shard_id, replica_id) -> model`` —
        builds one architecture-appropriate model per replica over the
        shard's sub-task.  Also used by each server's warm reload to
        construct fresh candidate instances.
    num_shards / replicas_per_shard:
        Fleet topology.  ``partition`` (a
        :class:`~repro.graph.partition.NodePartition` or explicit node
        lists) overrides the layout; otherwise ``adjacency`` is
        partitioned graph-aware; otherwise nodes are split contiguously.
    queue_depth / max_batch / server_kwargs:
        Forwarded to every replica's :class:`ForecastServer` (replica
        SLO monitors are disabled — the fleet monitor owns burn alerts).
    max_attempts / backoff:
        Per-shard dispatch budget and the retry-delay schedule (a
        :class:`~repro.resilience.backoff.Backoff`; only ``delay()`` is
        used — the router never sleeps, it schedules ``not_before``).
    replica_timeout:
        Seconds (on ``clock``) a dispatched sub-request may stay
        unanswered before the attempt is failed over.
    hedge_after:
        Seconds after which a still-outstanding sub-request is hedged to
        the next replica in the ring (``None`` disables hedging).  Set
        it near the replica p95 so only the tail pays the duplicate.
    gather_margin:
        Seconds reserved out of the request deadline for reassembly;
        sub-request deadlines are the fleet deadline minus this.
    backpressure_limit:
        Max outstanding sub-requests per shard before admission sheds
        (default ``replicas_per_shard * queue_depth``).
    breaker_factory:
        ``breaker_factory(replica_id) -> CircuitBreaker`` for the
        router-side transport breakers.
    slo / slo_ready_gate / metrics / logger / clock:
        As on :class:`ForecastServer`; the clock is shared with every
        replica server so absolute deadlines propagate unchanged.
    transport:
        ``"thread"`` (default) runs every replica in-process;
        ``"process"`` forks each replica into its own OS process behind
        the :mod:`repro.serve.proc` socket transport — same router
        contract, real crash isolation — and puts the set under a
        :class:`~repro.resilience.supervisor.ReplicaSupervisor`
        (heartbeat watchdog, budgeted restarts, crash-loop parking)
        polled from :meth:`process_once`.  Process mode requires a real
        clock: deadlines cross the process boundary as absolute
        ``CLOCK_MONOTONIC`` values.
    restart_policy / proc_kwargs:
        Process-mode tuning: a
        :class:`~repro.resilience.supervisor.RestartPolicy`, and extra
        kwargs for each :class:`~repro.serve.proc.ProcReplicaClient`
        (``heartbeat_interval``, ``ack_timeout``, ``slow_start_s``).
    """

    def __init__(
        self,
        task,
        model_factory,
        *,
        num_shards: int = 2,
        replicas_per_shard: int = 2,
        partition: NodePartition | list | None = None,
        adjacency: np.ndarray | None = None,
        queue_depth: int = 64,
        max_batch: int = 8,
        max_attempts: int = 3,
        backoff: Backoff | None = None,
        replica_timeout: float = 1.0,
        hedge_after: float | None = None,
        gather_margin: float = 0.0,
        backpressure_limit: int | None = None,
        breaker_factory=None,
        metrics: MetricsRegistry | None = None,
        logger=None,
        clock=time.monotonic,
        slo: SLOMonitor | None | bool = None,
        slo_ready_gate: bool = False,
        server_kwargs: dict | None = None,
        transport: str = "thread",
        restart_policy=None,
        proc_kwargs: dict | None = None,
    ):
        if replicas_per_shard < 1:
            raise ValueError(f"replicas_per_shard must be >= 1, got {replicas_per_shard}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if transport not in ("thread", "process"):
            raise ValueError(f"transport must be 'thread' or 'process', got {transport!r}")
        self.transport = transport
        self.supervisor = None
        self.task = task
        self.spec = RequestSpec.for_task(task)
        self.metrics = metrics if metrics is not None else MetricsRegistry(run="fleet")
        self.logger = logger
        self._clock = clock
        self.max_attempts = max_attempts
        self.backoff = backoff if backoff is not None else Backoff(base=0.02, max_delay=0.5)
        self.replica_timeout = replica_timeout
        self.hedge_after = hedge_after
        self.gather_margin = gather_margin
        self.backpressure_limit = (
            backpressure_limit if backpressure_limit is not None
            else replicas_per_shard * queue_depth
        )

        self.partition = self._resolve_partition(partition, adjacency, num_shards)
        if breaker_factory is None:
            breaker_factory = lambda rid: CircuitBreaker(
                failure_threshold=3, cooldown=2.0, clock=clock)

        self.shards: list[Shard] = []
        for shard_id, nodes in enumerate(self.partition.shards):
            nodes = np.asarray(nodes, dtype=np.int64)
            sub_task = task.node_subset(nodes)
            shard = Shard(shard_id=shard_id, nodes=nodes)
            for idx in range(replicas_per_shard):
                replica_id = f"s{shard_id}r{idx}"
                if transport == "process":
                    backend = self._make_proc_client(
                        replica_id, sub_task, shard_id, model_factory,
                        queue_depth, max_batch, server_kwargs,
                        proc_kwargs or {})
                else:
                    model = model_factory(sub_task, shard_id, replica_id)
                    backend = ForecastServer(
                        model, sub_task, queue_depth=queue_depth,
                        max_batch=max_batch,
                        model_factory=lambda st=sub_task, sid=shard_id,
                            rid=replica_id: model_factory(st, sid, rid),
                        metrics=self.metrics, logger=logger, clock=clock,
                        slo=False, **(server_kwargs or {}),
                    )
                shard.replicas.append(
                    Replica(replica_id, shard_id, backend,
                            breaker_factory(replica_id)))
            shard.ring = ConsistentHashRing([r.id for r in shard.replicas])
            self.shards.append(shard)
        if transport == "process":
            self._start_process_fleet(restart_policy, proc_kwargs or {})

        self._fallback = HistoricalAverage.for_task(task)
        if slo is None:
            slo = SLOMonitor(clock=clock, logger=logger, metrics=self.metrics)
        self.slo = slo if slo is not False else None
        self._slo_ready_gate = slo_ready_gate

        self._lock = threading.RLock()
        self._entries: dict[str, _FleetEntry] = {}
        self._inflight: dict[str, tuple[str, int]] = {}  # sub_id -> (fleet_id, shard)
        self._responses: list[FleetResponse] = []
        self._responses_lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._draining = False
        self._log("fleet_start", shards=len(self.shards),
                  replicas_per_shard=replicas_per_shard,
                  cut_fraction=self.partition.cut_fraction,
                  backpressure_limit=self.backpressure_limit,
                  max_attempts=max_attempts, replica_timeout=replica_timeout,
                  hedge_after=hedge_after)

    # -- topology -------------------------------------------------------- #

    def _resolve_partition(self, partition, adjacency, num_shards) -> NodePartition:
        if partition is not None:
            if isinstance(partition, NodePartition):
                resolved = partition
            else:
                shards = tuple(tuple(int(v) for v in nodes) for nodes in partition)
                weight = (adjacency if adjacency is not None
                          else np.zeros((self.task.num_nodes,) * 2))
                from ..graph.partition import cut_weight as _cut

                resolved = NodePartition(
                    shards, _cut(weight, shards), float(np.abs(weight).sum() / 2.0))
        elif adjacency is not None:
            resolved = partition_nodes(adjacency, num_shards)
        else:
            pieces = np.array_split(np.arange(self.task.num_nodes), num_shards)
            resolved = NodePartition(
                tuple(tuple(int(v) for v in piece) for piece in pieces), 0.0, 0.0)
        covered = sorted(n for nodes in resolved.shards for n in nodes)
        if covered != list(range(self.task.num_nodes)):
            raise ValueError(
                f"partition must cover every node exactly once "
                f"(task has {self.task.num_nodes} nodes)")
        return resolved

    def _make_proc_client(self, replica_id, sub_task, shard_id, model_factory,
                          queue_depth, max_batch, server_kwargs, proc_kwargs):
        """Build the out-of-process backend for one replica.

        The server factory runs **in the forked child**: the model is
        constructed there (nothing heavy crosses the fork besides the
        inherited address space), with its own metrics registry, a real
        monotonic clock (deadlines arrive as absolute CLOCK_MONOTONIC
        values), and no SLO monitor (the fleet monitor owns burn
        alerts, exactly as in thread mode).
        """
        from .proc import ProcReplicaClient

        def server_factory(st=sub_task, sid=shard_id, rid=replica_id,
                           skw=dict(server_kwargs or {})):
            model = model_factory(st, sid, rid)
            return ForecastServer(
                model, st, queue_depth=queue_depth, max_batch=max_batch,
                model_factory=lambda: model_factory(st, sid, rid),
                metrics=MetricsRegistry(run=f"replica-{rid}"),
                logger=None, clock=time.monotonic, slo=False, **skw,
            )

        allowed = {"heartbeat_interval", "ack_timeout", "slow_start_s"}
        return ProcReplicaClient(
            replica_id, server_factory, logger=self.logger,
            **{k: v for k, v in proc_kwargs.items() if k in allowed})

    def _start_process_fleet(self, restart_policy, proc_kwargs) -> None:
        """Spawn every replica child and put the set under supervision."""
        from ..resilience.supervisor import ReplicaSupervisor, RestartPolicy

        for rep in self.replicas:
            rep.server.spawn()
        ready_timeout = float(proc_kwargs.get("ready_timeout", 30.0))
        for rep in self.replicas:
            rep.server.wait_ready(timeout=ready_timeout)
        policy = restart_policy if restart_policy is not None else RestartPolicy()
        self.supervisor = ReplicaSupervisor(
            policy, Backoff(base=0.05, max_delay=2.0, jitter=0.5),
            clock=self._clock, logger=self.logger, metrics=self.metrics)

        def mark_down(replica_id, reason):
            with self._lock:
                self.replica(replica_id).killed = True

        def mark_up(replica_id):
            with self._lock:
                self.replica(replica_id).killed = False

        for rep in self.replicas:
            self.supervisor.register(rep.id, rep.server,
                                     on_down=mark_down, on_up=mark_up)

    def replica(self, replica_id: str) -> Replica:
        for shard in self.shards:
            for rep in shard.replicas:
                if rep.id == replica_id:
                    return rep
        raise KeyError(replica_id)

    @property
    def replicas(self) -> list[Replica]:
        return [rep for shard in self.shards for rep in shard.replicas]

    # -- front door ------------------------------------------------------ #

    def submit(self, payload, now: float | None = None) -> str:
        """Validate + admit one full-graph request; returns its id.

        Raises :class:`~.validation.InvalidRequestError` (bad payload),
        :class:`~.queueing.DeadlineExceededError` (dead on arrival), or
        :class:`FleetOverloadedError` (backpressure / draining).
        """
        now = self._now(now)
        with self._lock:  # paired with the start/stop writes
            draining = self._draining
        if draining or self._stop_event.is_set():
            self.metrics.counter("fleet.rejected").inc()
            self._log("fleet_rejected", code="draining")
            raise FleetOverloadedError(0, 0, detail="fleet is draining")
        arrived = time.perf_counter()
        try:
            request = validate_request(payload, self.spec, now=now)
            if request.expired(now):
                raise DeadlineExceededError(request.request_id, request.deadline, now)
        except Exception as exc:
            self.metrics.counter("fleet.rejected").inc()
            code = getattr(exc, "code", type(exc).__name__)
            self._log("fleet_rejected", code=code, detail=str(exc))
            root = start_span("fleet_request", parent=None, inherit=False, at=arrived)
            admission = start_span("admission", parent=root, inherit=False, at=arrived)
            finish_span(admission, status="error", code=str(code))
            finish_span(root, status="rejected", code=str(code))
            raise
        with self._lock:
            shed_shard = self._saturated_shard()
            if shed_shard is not None:
                depth = self._shard_load(shed_shard)
                self.metrics.counter("fleet.shed_backpressure").inc()
                self._log("fleet_backpressure_shed", shard=shed_shard,
                          outstanding=depth, limit=self.backpressure_limit)
                root = start_span("fleet_request", parent=None, inherit=False,
                                  at=arrived, trace_id=request.request_id)
                admission = start_span("admission", parent=root, inherit=False,
                                       at=arrived)
                finish_span(admission, status="error", code="backpressure",
                            shard=shed_shard)
                finish_span(root, status="rejected", code="backpressure")
                raise FleetOverloadedError(depth, self.backpressure_limit,
                                           shard_id=shed_shard)
            root = start_span("fleet_request", parent=None, inherit=False,
                              at=arrived, trace_id=request.request_id,
                              attrs={"deadline": request.deadline,
                                     "shards": len(self.shards)})
            admission = start_span("admission", parent=root, inherit=False, at=arrived)
            finish_span(admission)
            entry = _FleetEntry(
                request_id=request.request_id,
                window=request.window,
                time_index=request.time_index,
                deadline=request.deadline,
                received_at=now,
                metadata=request.metadata,
                subs={s.shard_id: _SubState(shard_id=s.shard_id, not_before=now)
                      for s in self.shards},
                root_span=root,
            )
            self._entries[request.request_id] = entry
        self.metrics.counter("fleet.admitted").inc()
        return request.request_id

    def _saturated_shard(self) -> int | None:
        # Callers hold self._lock.
        for shard in self.shards:
            if self._shard_load(shard.shard_id) >= self.backpressure_limit:
                return shard.shard_id
        return None

    def _shard_load(self, shard_id: int) -> int:
        # Callers hold self._lock.  Outstanding = sub-requests admitted
        # but not yet resolved (covers replica queues: an inflight sub
        # sits in some replica's queue until it is answered).
        return sum(1 for e in self._entries.values()
                   if e.subs[shard_id].open)

    # -- the synchronous core -------------------------------------------- #

    def process_once(self, now: float | None = None) -> list[FleetResponse]:
        """One router round: dispatch, pump replicas, integrate, resolve.

        Returns the fleet responses completed this round (also appended
        to the sink for :meth:`take_responses`).
        """
        now = self._now(now)
        if self.supervisor is not None:
            self.supervisor.poll(now)
        with self._lock:
            self._dispatch_due(now)
        self._pump_replicas(now)
        with self._lock:
            self._integrate(now)
            self._sweep(now)
            completed = self._resolve(now)
        if self.slo is not None and completed:
            self.slo.evaluate(now)
        return completed

    def drain(self, now: float | None = None) -> list[FleetResponse]:
        """Pump until every admitted request is answered or shed.

        With an explicitly-injected ``now`` the clock cannot advance, so
        the loop stops at the first round that makes no progress (work
        scheduled strictly in the future stays pending).
        """
        produced: list[FleetResponse] = []
        while True:
            with self._lock:
                if not self._entries:
                    break
            round_responses = self.process_once(now)
            produced.extend(round_responses)
            if now is not None and not round_responses:
                break
        return produced

    def take_responses(self) -> list[FleetResponse]:
        """Pop every completed fleet response (thread-safe sink)."""
        with self._responses_lock:
            out, self._responses = self._responses, []
        return out

    # -- dispatch -------------------------------------------------------- #

    def _dispatch_due(self, now: float) -> None:
        # Callers hold self._lock.
        for entry in list(self._entries.values()):
            if entry.deadline is not None and now >= entry.deadline:
                continue  # the resolve step sheds it
            for sub in entry.subs.values():
                if sub.status == "pending" and now >= sub.not_before:
                    self._dispatch(entry, sub, now)

    def _candidates(self, entry: _FleetEntry, sub: _SubState,
                    exclude=()) -> list[Replica]:
        shard = self.shards[sub.shard_id]
        ordered = [self._replica_of(shard, rid)
                   for rid in shard.ring.successors(entry.request_id)]
        routable = [r for r in ordered
                    if r.available and r.id not in exclude]
        untried = [r for r in routable if r.id not in sub.tried]
        return untried or routable

    @staticmethod
    def _replica_of(shard: Shard, replica_id: str) -> Replica:
        return next(r for r in shard.replicas if r.id == replica_id)

    def _dispatch(self, entry: _FleetEntry, sub: _SubState, now: float,
                  hedge: bool = False) -> None:
        # Callers hold self._lock.
        exclude = (sub.replica,) if hedge and sub.replica else ()
        chosen = None
        for candidate in self._candidates(entry, sub, exclude=exclude):
            if candidate.breaker.allow(now):
                chosen = candidate
                break
        if chosen is None:
            if hedge:
                return  # nobody to hedge to; the primary may still answer
            self._fail_shard(entry, sub, "no replica available", now)
            return
        attempt = sub.attempts
        kind = "h" if hedge else "a"
        sub_id = f"{entry.request_id}/s{sub.shard_id}{kind}{attempt}"
        shard = self.shards[sub.shard_id]
        sub_deadline = (entry.deadline - self.gather_margin
                        if entry.deadline is not None else None)
        dispatch_span = start_span(
            "dispatch", parent=entry.root_span, inherit=False,
            attrs={"shard": sub.shard_id, "replica": chosen.id,
                   "attempt": attempt, "hedge": hedge})
        payload = {
            "window": entry.window[:, shard.nodes, :],
            "time_index": entry.time_index,
            "id": sub_id,
        }
        if sub_deadline is not None:
            payload["deadline"] = sub_deadline
        try:
            chosen.submit(payload, now, parent_span=dispatch_span)
        except InvalidRequestError as exc:
            # Deterministic rejection — no replica will accept it.
            finish_span(dispatch_span, status="error", code=exc.code)
            self._fail_shard(entry, sub, f"sub-request invalid: {exc.code}", now)
            return
        except (ServiceOverloadedError, DeadlineExceededError,
                ReplicaDownError) as exc:
            finish_span(dispatch_span, status="error",
                        code=type(exc).__name__)
            chosen.breaker.record_failure(type(exc).__name__, now=now)
            if isinstance(exc, ServiceOverloadedError):
                self.metrics.counter("fleet.replica_overloads").inc()
            self._log("fleet_dispatch_failed", request_id=entry.request_id,
                      shard=sub.shard_id, replica=chosen.id,
                      reason=type(exc).__name__, attempt=attempt, hedge=hedge)
            if not hedge:
                sub.tried.append(chosen.id)
                self._retry_or_fail(entry, sub, type(exc).__name__, now)
            return
        sub.spans[sub_id] = dispatch_span
        self._inflight[sub_id] = (entry.request_id, sub.shard_id)
        if hedge:
            sub.hedge_id = sub_id
            sub.hedge_replica = chosen.id
            sub.hedged = True
            entry.hedged = True
            self.metrics.counter("fleet.hedges").inc()
            self._log("fleet_hedge", request_id=entry.request_id,
                      shard=sub.shard_id, primary=sub.replica, hedge=chosen.id)
        else:
            sub.status = "inflight"
            sub.sub_id = sub_id
            sub.replica = chosen.id
            sub.dispatched_at = now
            sub.attempts += 1
            sub.tried.append(chosen.id)

    # -- pump + integrate ------------------------------------------------ #

    def _pump_replicas(self, now: float) -> None:
        for rep in self.replicas:
            if rep.killed or rep.paused:
                continue
            rep.server.process_once(now)

    def _integrate(self, now: float) -> None:
        # Callers hold self._lock.
        for rep in self.replicas:
            for resp in rep.server.take_responses():
                routed = self._inflight.pop(resp.request_id, None)
                if routed is None:
                    self.metrics.counter("fleet.late_responses").inc()
                    continue
                fleet_id, shard_id = routed
                entry = self._entries.get(fleet_id)
                if entry is None:
                    continue
                sub = entry.subs[shard_id]
                span = sub.spans.pop(resp.request_id, None)
                if resp.prediction is None:
                    # The replica shed it (deadline passed in its queue).
                    finish_span(span, status="shed")
                    rep.breaker.record_failure("replica shed", now=now)
                    self._cancel_sibling(sub, resp.request_id)
                    self._retry_or_fail(entry, sub, "replica shed", now)
                    continue
                finish_span(span, status="ok", source=resp.source)
                rep.breaker.record_success(now=now)
                self._cancel_sibling(sub, resp.request_id)
                if sub.hedge_id == resp.request_id and sub.status == "inflight":
                    self.metrics.counter("fleet.hedge_wins").inc()
                sub.status = "done"
                sub.prediction = resp.prediction
                sub.source = resp.source
                sub.reason = resp.reason

    def _cancel_sibling(self, sub: _SubState, winner_id: str) -> None:
        # Callers hold self._lock.  Drop the other leg of a hedged pair.
        for other in (sub.sub_id, sub.hedge_id):
            if other is not None and other != winner_id:
                self._inflight.pop(other, None)
                finish_span(sub.spans.pop(other, None), status="superseded")

    # -- sweep: crashes, timeouts, hedges -------------------------------- #

    def _sweep(self, now: float) -> None:
        # Callers hold self._lock.
        for entry in list(self._entries.values()):
            for sub in entry.subs.values():
                if sub.status != "inflight":
                    continue
                primary = self.replica(sub.replica)
                hedge_rep = (self.replica(sub.hedge_replica)
                             if sub.hedge_replica else None)
                legs_down = primary.killed and (hedge_rep is None or hedge_rep.killed)
                timed_out = (sub.dispatched_at is not None
                             and now - sub.dispatched_at > self.replica_timeout)
                if legs_down or timed_out:
                    reason = "replica down" if legs_down else "replica timeout"
                    for leg, rep in ((sub.sub_id, primary), (sub.hedge_id, hedge_rep)):
                        if leg is None:
                            continue
                        self._inflight.pop(leg, None)
                        finish_span(sub.spans.pop(leg, None), status="error",
                                    code=reason)
                        if rep is not None:
                            rep.breaker.record_failure(reason, now=now)
                    sub.hedge_id = sub.hedge_replica = None
                    self.metrics.counter("fleet.failovers").inc()
                    self._log("fleet_failover", request_id=entry.request_id,
                              shard=sub.shard_id, replica=sub.replica,
                              reason=reason)
                    self._retry_or_fail(entry, sub, reason, now)
                elif (self.hedge_after is not None and not sub.hedged
                      and sub.dispatched_at is not None
                      and now - sub.dispatched_at > self.hedge_after):
                    self._dispatch(entry, sub, now, hedge=True)

    def _retry_or_fail(self, entry: _FleetEntry, sub: _SubState,
                       reason: str, now: float) -> None:
        # Callers hold self._lock.
        budget_left = entry.deadline is None or now < entry.deadline
        if sub.attempts < self.max_attempts and budget_left:
            delay = self.backoff.delay(max(0, sub.attempts - 1))
            sub.status = "pending"
            sub.sub_id = None
            sub.hedge_id = None
            sub.hedge_replica = None
            sub.dispatched_at = None
            sub.not_before = now + delay
            entry.retries += 1
            self.metrics.counter("fleet.retries").inc()
            self._log("fleet_retry_scheduled", request_id=entry.request_id,
                      shard=sub.shard_id, attempt=sub.attempts,
                      delay_s=delay, reason=reason)
        else:
            self._fail_shard(entry, sub, reason, now)

    def _fail_shard(self, entry: _FleetEntry, sub: _SubState,
                    reason: str, now: float) -> None:
        # Callers hold self._lock.  The shard still gets an answer: the
        # fleet-level historical-average fallback, explicitly marked.
        if entry.fallback is None:
            scaled = self._fallback.predict_windows(
                entry.time_index[None, :], self.task.history, self.task.out_dim)
            entry.fallback = self.task.inverse_targets(scaled)[0]
        shard = self.shards[sub.shard_id]
        sub.status = "failed"
        sub.prediction = entry.fallback[:, shard.nodes, :]
        sub.source = "historical_average"
        sub.reason = reason
        self.metrics.counter("fleet.shard_fallbacks").inc()
        self._log("fleet_shard_fallback", request_id=entry.request_id,
                  shard=sub.shard_id, reason=reason, attempts=sub.attempts)

    # -- resolve: gather + shed ------------------------------------------ #

    def _resolve(self, now: float) -> list[FleetResponse]:
        # Callers hold self._lock.
        completed: list[FleetResponse] = []
        for fleet_id, entry in list(self._entries.items()):
            if all(not sub.open for sub in entry.subs.values()):
                completed.append(self._gather(entry, now))
                del self._entries[fleet_id]
            elif entry.deadline is not None and now >= entry.deadline:
                completed.append(self._shed(entry, now))
                del self._entries[fleet_id]
        return completed

    def _gather(self, entry: _FleetEntry, now: float) -> FleetResponse:
        prediction = np.empty(
            (self.task.horizon, self.task.num_nodes, self.task.out_dim))
        sources: dict[int, str] = {}
        for shard in self.shards:
            sub = entry.subs[shard.shard_id]
            prediction[:, shard.nodes, :] = sub.prediction
            sources[shard.shard_id] = sub.source
        model_shards = sum(1 for s in sources.values() if s == "model")
        if model_shards == len(sources):
            source = "model"
        elif model_shards == 0:
            source = "historical_average"
        else:
            source = "mixed"
        degraded = source != "model"
        reasons = sorted({sub.reason for sub in entry.subs.values() if sub.reason})
        gather_span = start_span("gather", parent=entry.root_span, inherit=False,
                                 attrs={"source": source})
        finish_span(gather_span)
        response = FleetResponse(
            request_id=entry.request_id,
            prediction=prediction,
            source=source,
            degraded=degraded,
            reason="; ".join(reasons) if reasons else None,
            latency_ms=max(0.0, (now - entry.received_at) * 1000.0),
            deadline_missed=entry.deadline is not None and now >= entry.deadline,
            shard_sources=sources,
            retries=entry.retries,
            hedged=entry.hedged,
            metadata=entry.metadata,
        )
        self._finish_response(entry, response, now,
                              status="ok" if not degraded else "degraded")
        return response

    def _shed(self, entry: _FleetEntry, now: float) -> FleetResponse:
        for sub in entry.subs.values():
            for leg in (sub.sub_id, sub.hedge_id):
                if leg is not None:
                    self._inflight.pop(leg, None)
            for span in sub.spans.values():
                finish_span(span, status="canceled")
            sub.spans.clear()
        # _finish_response counts this as fleet.shed via fleet.{source}.
        self._log("fleet_request_shed", request_id=entry.request_id,
                  deadline=entry.deadline,
                  open_shards=[s.shard_id for s in entry.subs.values() if s.open])
        response = FleetResponse(
            request_id=entry.request_id,
            prediction=None,
            source="shed",
            degraded=True,
            reason="deadline passed before every shard answered",
            latency_ms=max(0.0, (now - entry.received_at) * 1000.0),
            deadline_missed=True,
            shard_sources={sid: (sub.source or "unanswered")
                           for sid, sub in entry.subs.items()},
            retries=entry.retries,
            hedged=entry.hedged,
            metadata=entry.metadata,
        )
        self._finish_response(entry, response, now, status="shed")
        return response

    def _finish_response(self, entry: _FleetEntry, response: FleetResponse,
                         now: float, status: str) -> None:
        self.metrics.counter(f"fleet.{response.source}").inc()
        self.metrics.counter("fleet.answered" if response.source != "shed"
                             else "fleet.shed_answered").inc()
        self.metrics.histogram("fleet.latency_ms").observe(response.latency_ms)
        if self.slo is not None:
            self.slo.observe(response.latency_ms, failure=response.degraded, now=now)
        finish_span(entry.root_span, status=status, source=response.source,
                    latency_ms=response.latency_ms, retries=response.retries)
        with self._responses_lock:
            self._responses.append(response)

    # -- lifecycle ------------------------------------------------------- #

    def start(self, poll_interval: float = 0.005) -> None:
        """Spawn the router worker thread (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop_event.clear()
        with self._lock:
            self._draining = False

        def loop():
            while not self._stop_event.is_set():
                produced = self.process_once()
                with self._lock:
                    idle = not self._entries
                if not produced and idle:
                    self._stop_event.wait(poll_interval)

        self._worker = threading.Thread(target=loop, name="fleet-router", daemon=True)
        self._worker.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; with ``drain`` resolve everything in flight.

        Process transport: after the drain, supervision is disabled
        (restarts would re-create what we are tearing down) and every
        replica child is closed gracefully — SHUTDOWN over the wire,
        escalating SIGTERM → SIGKILL on a deadline, so no orphan
        processes survive the fleet.
        """
        with self._lock:
            self._draining = drain
        self._stop_event.set()
        if self._worker is not None:
            self._worker.join(timeout)
            self._worker = None
        if drain:
            self.drain()
        if self.supervisor is not None:
            self.supervisor.disable()
        if self.transport == "process":
            for rep in self.replicas:
                rep.server.close(drain=False)
        self._log("fleet_stop", drained=drain)

    def health(self) -> dict:
        """Aggregated liveness: one verdict over every shard and replica.

        ``status`` is ``"ok"`` (full redundancy everywhere),
        ``"degraded"`` (every shard still has an available replica, but
        redundancy is reduced, a server reports degraded, or an SLO is
        burning), or ``"unavailable"`` (some shard has no available
        replica — full-graph answers now depend on the fallback).
        """
        now = self._now(None)
        statuses = self.slo.evaluate(now) if self.slo is not None else []
        shard_reports = []
        degraded = any(not s.ok for s in statuses)
        unavailable = False
        for shard in self.shards:
            replicas = []
            for rep in shard.replicas:
                server_health = rep.server.health()
                replicas.append({
                    "id": rep.id,
                    "available": rep.available,
                    "killed": rep.killed,
                    "reloading": rep.reloading,
                    "transport_breaker": rep.breaker.state,
                    "server_status": server_health["status"],
                    "model_version": server_health["model_version"],
                    "queue_depth": server_health["queue_depth"],
                })
                if rep.available and (server_health["status"] != "ok"
                                      or rep.breaker.state == OPEN):
                    degraded = True
            healthy = len(shard.available_replicas)
            if healthy == 0:
                unavailable = True
            elif healthy < len(shard.replicas):
                degraded = True
            shard_reports.append({
                "shard_id": shard.shard_id,
                "nodes": int(len(shard.nodes)),
                "healthy_replicas": healthy,
                "replicas": replicas,
            })
        status = ("unavailable" if unavailable
                  else "degraded" if degraded else "ok")
        snap = self.metrics.snapshot()
        return {
            "status": status,
            "shards": shard_reports,
            "cut_fraction": self.partition.cut_fraction,
            "slo": [s.to_dict() for s in statuses],
            "counters": snap["counters"],
        }

    def ready(self) -> bool:
        """Accepting traffic: not draining, every shard has a replica.

        With ``slo_ready_gate=True`` a firing fast-burn alert also
        reports not-ready, mirroring :meth:`ForecastServer.ready`.
        """
        with self._lock:  # paired with the start/stop writes
            draining = self._draining
        if draining or self._stop_event.is_set():
            return False
        if any(not shard.available_replicas for shard in self.shards):
            return False
        if self._slo_ready_gate and self.slo is not None:
            statuses = self.slo.evaluate(self._now(None))
            if any("fast_burn" in s.firing for s in statuses):
                return False
        return True

    # -- rolling reload -------------------------------------------------- #

    def rolling_reload(self, checkpoints, now: float | None = None,
                       min_available: int = 1) -> list[dict]:
        """Warm-reload the fleet one replica at a time, never below N-1.

        ``checkpoints`` maps shard id to a checkpoint path (dict,
        callable, or a single path applied to every shard — only valid
        when all shards share an architecture).  Per replica: take it
        out of rotation, drain what it holds, verify-and-swap via
        :meth:`ForecastServer.reload_checkpoint` (a corrupt or
        mis-shaped candidate is rejected and the old model keeps
        serving), then return it to rotation.  A step that would leave a
        shard with fewer than ``min_available`` available replicas is
        **refused** with a structured ``fleet_reload_refused`` record —
        the invariant that makes reloads routine under failure.

        Returns one record per replica: ``action`` is ``"reloaded"``,
        ``"rejected"`` (bad checkpoint; old model still live),
        ``"refused"`` (N-1 floor), or ``"skipped"`` (the replica itself
        is down — nothing to swap), plus the shard's available-replica
        count *during* the step so tests can assert the invariant held.
        """
        now = self._now(now)
        if callable(checkpoints):
            resolve = checkpoints
        elif isinstance(checkpoints, dict):
            resolve = checkpoints.get
        else:
            resolve = lambda _sid: checkpoints
        reload_span = start_span("rolling_reload", parent=None, inherit=False)
        records: list[dict] = []
        for shard in self.shards:
            path = resolve(shard.shard_id)
            if path is None:
                continue
            for rep in shard.replicas:
                if not rep.available:
                    # A crashed (or already-reloading) replica has no
                    # process to swap; reload it on revival instead.
                    record = {"replica": rep.id, "shard": shard.shard_id,
                              "action": "skipped",
                              "reason": "replica not available"}
                    self._log("fleet_reload_skipped", **record)
                    records.append(record)
                    continue
                others = [r for r in shard.replicas if r is not rep and r.available]
                if len(others) < min_available:
                    record = {
                        "replica": rep.id, "shard": shard.shard_id,
                        "action": "refused",
                        "reason": f"reload would leave shard {shard.shard_id} with "
                                  f"{len(others)} available replica(s), below the "
                                  f"N-1 floor of {min_available}",
                        "available_during": len(others) + int(rep.available),
                    }
                    self.metrics.counter("fleet.reload_refused").inc()
                    self._log("fleet_reload_refused", **record)
                    records.append(record)
                    continue
                step_span = start_span("replica_reload", parent=reload_span,
                                       inherit=False,
                                       attrs={"replica": rep.id,
                                              "shard": shard.shard_id})
                with self._lock:
                    rep.reloading = True
                available_during = len(shard.available_replicas)
                # Drain what the replica already holds before swapping.
                guard = 0
                while len(rep.server.queue) and guard < 10_000:
                    self.process_once(now)
                    guard += 1
                version_before = rep.server.model_version
                ok = rep.server.reload_checkpoint(path)
                with self._lock:
                    rep.reloading = False
                record = {
                    "replica": rep.id, "shard": shard.shard_id,
                    "action": "reloaded" if ok else "rejected",
                    "available_during": available_during,
                    "version_before": version_before,
                    "version_after": rep.server.model_version,
                }
                self.metrics.counter(
                    "fleet.reloads" if ok else "fleet.reload_rejected").inc()
                self._log("fleet_replica_reload", **record)
                finish_span(step_span, status="ok" if ok else "rejected")
                records.append(record)
        finish_span(reload_span,
                    reloaded=sum(1 for r in records if r["action"] == "reloaded"),
                    rejected=sum(1 for r in records if r["action"] == "rejected"),
                    refused=sum(1 for r in records if r["action"] == "refused"))
        return records

    # -- plumbing -------------------------------------------------------- #

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def _log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.log(event, **fields)
