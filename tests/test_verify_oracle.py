"""Gradient oracle tests (repro.verify.oracle + the grad_check hardening).

Covers: the full-model sampled-coordinate check on a tiny TGCRN (the
acceptance criterion: completes inside tier-1 budgets), dtype/finiteness
guards, try/finally parameter restoration, and detection of a genuinely
wrong backward implementation.
"""

import time

import numpy as np
import pytest

from repro.autodiff import Tensor, mae_loss, mse_loss, numerical_gradient
from repro.nn import Linear, Module, Parameter
from repro.verify import check_module_gradients


class TestFullModel:
    def test_tiny_tgcrn_sampled_check_passes_fast(self, tiny_tgcrn_setup):
        model, loss_fn = tiny_tgcrn_setup
        start = time.perf_counter()
        report = check_module_gradients(
            model, loss_fn, max_coords_per_param=8, rng=np.random.default_rng(0)
        )
        elapsed = time.perf_counter() - start
        report.raise_if_failed()
        assert elapsed < 60.0, f"sampled full-model check took {elapsed:.1f}s"
        # every parameter tensor of the model was visited
        assert len(report.checks) == len(model.parameters())
        assert report.coords_checked >= len(report.checks)

    def test_sampled_mode_limits_coordinates(self, tiny_tgcrn_setup):
        model, loss_fn = tiny_tgcrn_setup
        report = check_module_gradients(
            model, loss_fn, max_coords_per_param=2, rng=np.random.default_rng(1)
        )
        assert all(check.coords_checked <= 2 for check in report.checks)
        report.raise_if_failed()

    @pytest.mark.slow
    def test_tiny_tgcrn_exhaustive_check(self, tiny_tgcrn_setup):
        """Every coordinate of every parameter — the scheduled deep sweep."""
        model, loss_fn = tiny_tgcrn_setup
        report = check_module_gradients(model, loss_fn, max_coords_per_param=None)
        report.raise_if_failed()
        assert report.coords_checked == sum(p.size for p in model.parameters())


class TestGuards:
    def test_rejects_non_float_parameters(self):
        class IntModule(Module):
            def __init__(self):
                super().__init__()
                self.table = Parameter(np.arange(4))
                self.table.data = self.table.data.astype(np.int64)

        module = IntModule()
        with pytest.raises(TypeError, match="non-float"):
            check_module_gradients(module, lambda: Tensor(0.0), max_coords_per_param=None)

    def test_rejects_non_scalar_loss(self, rng):
        model = Linear(3, 2, rng=rng)
        x = Tensor(np.ones((4, 3)))
        with pytest.raises(ValueError, match="scalar"):
            check_module_gradients(model, lambda: model(x))

    def test_rejects_parameterless_module(self):
        with pytest.raises(ValueError, match="no parameters"):
            check_module_gradients(Module(), lambda: Tensor(0.0))

    def test_non_finite_loss_reported_as_failure(self, rng):
        model = Linear(2, 1, rng=rng)
        report = check_module_gradients(model, lambda: Tensor(np.nan))
        assert not report.passed
        assert "non-finite loss" in report.failures[0].note

    def test_parameters_restored_after_crashing_loss(self, rng):
        """A loss that explodes mid-sweep must not corrupt the model."""
        model = Linear(3, 2, rng=rng)
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        calls = {"n": 0}

        def flaky_loss():
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("boom")
            return mse_loss(model(Tensor(np.ones((2, 3)))), Tensor(np.zeros((2, 2))))

        with pytest.raises(RuntimeError):
            check_module_gradients(model, flaky_loss, max_coords_per_param=None)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])


class TestDetection:
    def test_catches_wrong_backward(self):
        """A module whose backward doubles the true gradient must fail."""

        class BuggyScale(Module):
            def __init__(self):
                super().__init__()
                self.scale = Parameter(np.array([1.5]))

            def forward(self, x: Tensor) -> Tensor:
                param = self.scale
                out_data = x.data * param.data

                def backward_fn(grad):
                    # deliberate bug: factor of 2 on the parameter gradient
                    param._accumulate(np.array([2.0 * float((grad * x.data).sum())]))

                return Tensor._make(out_data, (param,), backward_fn)

        module = BuggyScale()
        x = Tensor(np.array([1.0, 2.0, 3.0]))
        report = check_module_gradients(
            module, lambda: module(x).sum(), max_coords_per_param=None
        )
        assert not report.passed
        assert report.failures[0].name == "scale"


class TestNumericalGradientHardening:
    """Satellite: grad_check.numerical_gradient restoration + dtype guard."""

    def test_restores_parameter_after_exception(self):
        w = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        original = w.data.copy()
        calls = {"n": 0}

        def crashing_fn():
            calls["n"] += 1
            if calls["n"] == 4:  # fail on the second coordinate's +eps eval
                raise ValueError("mid-sweep crash")
            return (w * w).sum()

        with pytest.raises(ValueError, match="mid-sweep"):
            numerical_gradient(crashing_fn, w)
        np.testing.assert_array_equal(w.data, original)

    def test_rejects_integer_parameter(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        w.data = w.data.astype(np.int32)
        with pytest.raises(TypeError, match="floating-point"):
            numerical_gradient(lambda: Tensor(0.0), w)

    def test_still_computes_correct_gradient(self):
        w = Tensor(np.array([[1.0, -2.0], [0.5, 3.0]]), requires_grad=True)
        grad = numerical_gradient(lambda: (w * w).sum(), w)
        np.testing.assert_allclose(grad, 2.0 * w.data, rtol=1e-6, atol=1e-8)

    def test_non_contiguous_parameter(self):
        """``.flat`` indexing must hit the real buffer even for views."""
        base = np.arange(8, dtype=float).reshape(2, 4)
        view = base[:, ::2]  # non-contiguous view
        w = Tensor(np.array([0.0]), requires_grad=True)
        w.data = view
        grad = numerical_gradient(lambda: Tensor((w.data ** 2).sum()), w)
        np.testing.assert_allclose(grad, 2.0 * view, rtol=1e-6, atol=1e-8)
        np.testing.assert_array_equal(base, np.arange(8, dtype=float).reshape(2, 4))


class TestAttentionConvCoverage:
    """Satellite: oracle coverage for nn/attention.py and nn/conv.py."""

    def test_multi_head_attention_gradients(self, rng):
        from repro.nn.attention import MultiHeadAttention, causal_mask

        attn = MultiHeadAttention(model_dim=4, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        target = Tensor(rng.normal(size=(2, 3, 4)))
        mask = causal_mask(3)

        report = check_module_gradients(
            attn,
            lambda: mse_loss(attn(x, x, x, mask=mask), target),
            max_coords_per_param=6,
            rng=np.random.default_rng(2),
        )
        report.raise_if_failed()

    def test_transformer_block_gradients(self, rng):
        from repro.nn.attention import TransformerBlock

        block = TransformerBlock(model_dim=4, num_heads=2, ff_dim=6, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        target = Tensor(rng.normal(size=(2, 3, 4)))
        report = check_module_gradients(
            block,
            lambda: mae_loss(block(x), target),
            max_coords_per_param=4,
            rng=np.random.default_rng(3),
            epsilon=1e-6,
        )
        report.raise_if_failed()

    def test_dilated_causal_conv_gradients(self, rng):
        from repro.nn.conv import Conv1d

        conv = Conv1d(2, 3, kernel_size=3, dilation=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 2)))
        target = Tensor(rng.normal(size=(2, 6, 3)))
        report = check_module_gradients(
            conv,
            lambda: mse_loss(conv(x), target),
            max_coords_per_param=None,  # small enough to be exhaustive
        )
        report.raise_if_failed()
        assert report.coords_checked == sum(p.size for p in conv.parameters())

    def test_gated_tcn_block_gradients(self, rng):
        from repro.nn.conv import GatedTCNBlock

        block = GatedTCNBlock(channels=2, kernel_size=2, dilation=1, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        target = Tensor(rng.normal(size=(2, 5, 2)))
        report = check_module_gradients(
            block,
            lambda: mse_loss(block(x), target),
            max_coords_per_param=6,
            rng=np.random.default_rng(4),
        )
        report.raise_if_failed()
