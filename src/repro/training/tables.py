"""Paper-style result table formatting.

Benchmarks print the same rows the paper reports; these helpers keep the
formatting consistent and machine-greppable for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from .experiment import ExperimentResult


def format_metro_table(results: Sequence[ExperimentResult], interval_minutes: int = 15) -> str:
    """Table IV layout: per-horizon MAE/RMSE/MAPE columns."""
    if not results:
        return "(no results)"
    horizons = len(results[0].per_horizon)
    header = f"{'Method':<14}"
    for q in range(horizons):
        header += f" | {str((q + 1) * interval_minutes) + ' min':^24}"
    sub = f"{'':<14}"
    for _ in range(horizons):
        sub += f" | {'MAE':>7} {'RMSE':>8} {'MAPE%':>7}"
    lines = [header, sub, "-" * len(sub)]
    for result in results:
        row = f"{result.model_name:<14}"
        for report in result.per_horizon:
            row += f" | {report.mae:7.2f} {report.rmse:8.2f} {report.mape:7.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_demand_table(results: Sequence[ExperimentResult]) -> str:
    """Table V layout: overall MAE/RMSE/PCC."""
    lines = [f"{'Method':<14} | {'MAE':>8} {'RMSE':>8} {'PCC':>7}", "-" * 44]
    for result in results:
        r = result.overall
        lines.append(f"{result.model_name:<14} | {r.mae:8.4f} {r.rmse:8.4f} {r.pcc:7.4f}")
    return "\n".join(lines)


def format_electricity_table(results: Sequence[ExperimentResult]) -> str:
    """Table VI layout: MSE/MAE."""
    lines = [f"{'Method':<14} | {'MSE':>8} {'MAE':>8}", "-" * 35]
    for result in results:
        r = result.overall
        lines.append(f"{result.model_name:<14} | {r.mse:8.4f} {r.mae:8.4f}")
    return "\n".join(lines)


def format_ablation_table(results: Sequence[ExperimentResult]) -> str:
    """Table VII layout: average-horizon MAE/RMSE/MAPE per variant."""
    lines = [f"{'Variant':<12} | {'MAE':>7} {'RMSE':>8} {'MAPE%':>7}", "-" * 40]
    for result in results:
        r = result.overall
        lines.append(f"{result.model_name:<12} | {r.mae:7.2f} {r.rmse:8.2f} {r.mape:7.2f}")
    return "\n".join(lines)


def format_cost_table(rows: Sequence[tuple[str, int, float]]) -> str:
    """Table VIII layout: parameter count + seconds per epoch."""
    lines = [f"{'Model':<22} | {'# Parameters':>12} | {'s/epoch':>8}", "-" * 50]
    for name, params, seconds in rows:
        lines.append(f"{name:<22} | {params:12,d} | {seconds:8.3f}")
    return "\n".join(lines)


def format_relative_series(name: str, values: Sequence[float], benchmark: Sequence[float]) -> str:
    """Fig. 8 layout: metric per horizon relative to the FC-LSTM benchmark."""
    ratio = " ".join(f"{v / b:6.3f}" for v, b in zip(values, benchmark))
    return f"{name:<14} | {ratio}"
