"""ForecastServer lifecycle: serving, shedding, reload, drain, probes."""

import threading
import time

import numpy as np
import pytest

from repro.core import TGCRN
from repro.nn import save_checkpoint
from repro.obs import MetricsRegistry, RunLogger
from repro.resilience import corrupt_checkpoint
from repro.serve import (
    CircuitBreaker,
    ForecastServer,
    ServiceOverloadedError,
)
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


@pytest.fixture(autouse=True)
def lockorder_sanitizer():
    """Run every server test under the lock-order sanitizer: the tests
    pass only if no observed pair of locks was ever taken in opposite
    orders (and no lock was held across a fault-injection seam)."""
    from repro.analyze import LockOrderSanitizer

    sanitizer = LockOrderSanitizer().install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
    sanitizer.check()


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _model(task, name="serve-test-model"):
    return TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
        rng=named_rng(3, name),
    )


def _payload(task, i, **extra):
    j = i % len(task.test)
    return {"window": task.test.inputs[j],
            "time_index": task.test.time_indices[j],
            "id": f"req-{i}", **extra}


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def server(tiny_task, clock):
    return ForecastServer(
        _model(tiny_task), tiny_task, queue_depth=8, max_batch=4,
        breaker=CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=clock),
        clock=clock,
    )


class TestServing:
    def test_healthy_requests_get_model_forecasts(self, tiny_task, server):
        for i in range(5):
            server.submit(_payload(tiny_task, i))
        responses = server.drain()
        assert len(responses) == 5
        for r in responses:
            assert r.source == "model" and not r.degraded
            assert r.prediction.shape == (tiny_task.horizon, tiny_task.num_nodes,
                                          tiny_task.out_dim)
            assert np.all(np.isfinite(r.prediction))
            assert r.model_version == server.model_version

    def test_micro_batching_coalesces(self, tiny_task, server):
        for i in range(5):
            server.submit(_payload(tiny_task, i))
        server.drain()
        batch = server.metrics.histogram("serve.batch_size")
        assert batch.count == 2  # 4 + 1
        assert batch.high == 4.0

    def test_overload_rejected_with_503(self, tiny_task, server):
        for i in range(8):
            server.submit(_payload(tiny_task, i))
        with pytest.raises(ServiceOverloadedError):
            server.submit(_payload(tiny_task, 99))
        assert server.metrics._counters["serve.shed"].value == 1

    def test_abort_drops_queued_work_and_closes_spans(self, tiny_task, server):
        from repro.obs.spans import collect_spans

        with collect_spans() as collector:
            ids = [server.submit(_payload(tiny_task, i)) for i in range(3)]
            dropped = server.abort(reason="crash teardown")
        assert dropped == ids
        assert len(server.queue) == 0
        assert server.take_responses() == []  # nothing answered, by design
        roots = [r for r in collector.records if r["name"] == "request"]
        assert len(roots) == 3
        assert all(r["status"] == "canceled" for r in roots)

    def test_deadline_shed_at_dequeue_answers_explicitly(self, tiny_task, server, clock):
        server.submit(_payload(tiny_task, 0, deadline=5.0))
        server.submit(_payload(tiny_task, 1))
        clock.advance(6.0)
        responses = server.process_once()
        by_id = {r.request_id: r for r in responses}
        assert by_id["req-0"].source == "shed"
        assert by_id["req-0"].prediction is None and by_id["req-0"].deadline_missed
        assert by_id["req-1"].source == "model"

    def test_responses_accumulate_in_sink(self, tiny_task, server):
        server.submit(_payload(tiny_task, 0))
        server.drain()
        taken = server.take_responses()
        assert [r.request_id for r in taken] == ["req-0"]
        assert server.take_responses() == []

    def test_latency_uses_injected_clock(self, tiny_task, server, clock):
        server.submit(_payload(tiny_task, 0))
        clock.advance(0.25)
        (response,) = server.process_once()
        assert response.latency_ms == pytest.approx(250.0)


class TestLifecycle:
    def test_health_and_ready(self, tiny_task, server):
        health = server.health()
        assert health["status"] == "ok" and health["breaker"] == "closed"
        assert health["queue_depth"] == 0
        assert health["model_version"] == server.model_version
        assert server.ready()

    def test_stop_refuses_new_traffic(self, tiny_task, server):
        server.submit(_payload(tiny_task, 0))
        server.stop(drain=True)
        assert not server.ready()
        assert len(server.take_responses()) == 1  # drained before stopping
        with pytest.raises(ServiceOverloadedError, match="draining"):
            server.submit(_payload(tiny_task, 1))

    def test_worker_thread_serves_and_drains(self, tiny_task):
        server = ForecastServer(_model(tiny_task), tiny_task, queue_depth=32, max_batch=4)
        server.start(poll_interval=0.005)
        for i in range(6):
            server.submit(_payload(tiny_task, i))
        deadline = time.monotonic() + 10.0
        got = []
        while len(got) < 6 and time.monotonic() < deadline:
            got.extend(server.take_responses())
            time.sleep(0.005)
        server.stop(drain=True)
        got.extend(server.take_responses())
        assert len(got) == 6
        assert all(r.source == "model" for r in got)

    def test_concurrent_submitters_all_answered(self, tiny_task):
        server = ForecastServer(_model(tiny_task), tiny_task, queue_depth=64, max_batch=4)
        server.start(poll_interval=0.005)
        errors = []

        def feed(base):
            try:
                for i in range(4):
                    server.submit(_payload(tiny_task, base + i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=feed, args=(base,)) for base in (0, 10, 20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop(drain=True)
        assert not errors
        assert len(server.take_responses()) == 12


class TestDrainTimeout:
    def test_wedged_worker_is_reported_not_swallowed(self, tiny_task):
        events = []

        class Recorder:
            def log(self, event, **fields):
                events.append({"event": event, **fields})

        server = ForecastServer(_model(tiny_task), tiny_task, queue_depth=8,
                                max_batch=4, logger=Recorder())
        release = threading.Event()
        real_process_once = server.process_once

        def wedged_process_once(*args, **kwargs):
            release.wait(10.0)
            return real_process_once(*args, **kwargs)

        server.process_once = wedged_process_once
        server.start(poll_interval=0.005)
        server.submit(_payload(tiny_task, 0))
        deadline = time.monotonic() + 5.0
        while not release.is_set() and time.monotonic() < deadline:
            time.sleep(0.005)  # let the worker pick the request up
            break
        assert server.stop(drain=True, timeout=0.05) is False
        drain_timeouts = [e for e in events if e["event"] == "drain_timeout"]
        assert len(drain_timeouts) == 1
        assert drain_timeouts[0]["timeout_s"] == 0.05
        assert server.metrics._counters["serve.drain_timeouts"].value == 1
        # the wedge clears: a later stop() succeeds and drains cleanly
        release.set()
        assert server.stop(drain=True, timeout=10.0) is True
        assert [r.request_id for r in server.take_responses()] == ["req-0"]

    def test_clean_stop_returns_true(self, tiny_task):
        server = ForecastServer(_model(tiny_task), tiny_task, queue_depth=8,
                                max_batch=4)
        server.start(poll_interval=0.005)
        assert server.stop(drain=True) is True


class TestWarmReload:
    def test_good_checkpoint_swaps_atomically(self, tiny_task, server, tmp_path):
        other = _model(tiny_task, name="serve-other-model")
        path = tmp_path / "good.npz"
        save_checkpoint(path, other, metadata={"tag": "v2"})
        before = server.model_version
        assert server.reload_checkpoint(path)
        assert server.model_version != before
        assert server.metrics._counters["serve.reloads"].value == 1

    def test_corrupt_checkpoint_rejected_live_model_survives(
        self, tiny_task, server, tmp_path
    ):
        other = _model(tiny_task, name="serve-other-model")
        path = tmp_path / "bad.npz"
        save_checkpoint(path, other)
        corrupt_checkpoint(path, mode="truncate")
        before = server.model_version
        assert not server.reload_checkpoint(path)
        assert server.model_version == before
        # The previously-live model keeps serving.
        server.submit(_payload(tiny_task, 0))
        (response,) = server.drain()
        assert response.source == "model" and response.model_version == before

    def test_bitflip_checkpoint_rejected(self, tiny_task, server, tmp_path):
        other = _model(tiny_task, name="serve-other-model")
        path = tmp_path / "flip.npz"
        save_checkpoint(path, other)
        corrupt_checkpoint(path, mode="bitflip", seed=11)
        assert not server.reload_checkpoint(path)

    def test_missing_checkpoint_rejected_gracefully(self, tiny_task, server, tmp_path):
        assert not server.reload_checkpoint(tmp_path / "nope.npz")

    def test_rejection_logged_structured(self, tiny_task, clock, tmp_path):
        log = tmp_path / "serve.jsonl"
        logger = RunLogger(path=str(log), console=False)
        server = ForecastServer(
            _model(tiny_task), tiny_task, logger=logger, clock=clock,
            metrics=MetricsRegistry(run="reload-test"),
        )
        path = tmp_path / "bad.npz"
        save_checkpoint(path, _model(tiny_task, name="serve-other-model"))
        corrupt_checkpoint(path, mode="truncate")
        assert not server.reload_checkpoint(path)
        logger.close()
        import json

        records = [json.loads(line) for line in log.open()]
        rejected = [r for r in records if r["event"] == "checkpoint_rejected"]
        assert len(rejected) == 1
        assert rejected[0]["live_model_version"] == server.model_version
        assert "reason" in rejected[0]


class TestStaticShapeGate:
    """A served model is symbolically shape-checked against its task
    before it can take traffic (repro.analyze.shapes wiring)."""

    def test_mis_shaped_model_is_rejected_at_construction(self, tiny_task, clock):
        from repro.analyze import ModelShapeError
        from repro.core import NodeAdaptiveGraphConv

        bad = _model(tiny_task, name="serve-bad-model")
        cell = bad.encoder_cells[0]
        bad.encoder_cells[0].gate_conv = NodeAdaptiveGraphConv(
            cell.in_dim + cell.hidden_dim, 2 * cell.hidden_dim + 1,
            embed_dim=6, rng=named_rng(9, "serve-bad-gate"),
        )
        with pytest.raises(ModelShapeError) as excinfo:
            ForecastServer(bad, tiny_task, clock=clock)
        assert any(f.severity == "error" for f in excinfo.value.findings)

    def test_shape_check_can_be_disabled(self, tiny_task, clock):
        bad = _model(tiny_task, name="serve-bad-model-2")
        pool = bad.encoder_cells[0].gate_conv.weight_pool
        pool.data = pool.data.astype(np.float32)  # SH005 would reject this
        server = ForecastServer(bad, tiny_task, clock=clock, shape_check=False)
        assert server.ready()
