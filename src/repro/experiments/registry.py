"""Programmatic registry of the paper's experiments.

The pytest benches under ``benchmarks/`` are thin wrappers around these
functions; importing them here lets users regenerate any table/figure
from Python or the CLI without pytest:

>>> from repro.experiments import run, list_experiments
>>> print(run("table6"))           # doctest: +SKIP

Each experiment accepts a :class:`ExperimentScale` so callers can dial
node counts / epochs between smoke-test and paper-approaching sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data import load_task
from ..training import (
    TrainingConfig,
    format_ablation_table,
    format_cost_table,
    format_demand_table,
    format_electricity_table,
    format_metro_table,
    format_relative_series,
    run_experiment,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by all experiments."""

    metro_nodes: int = 12
    metro_days: int = 10
    demand_nodes: int = 10
    demand_days: int = 8
    electricity_nodes: int = 10
    electricity_days: int = 20
    epochs: int = 8
    hidden_dim: int = 16
    node_dim: int = 16
    time_dim: int = 8
    num_layers: int = 1
    seed: int = 0

    def tgcrn_kwargs(self) -> dict:
        return dict(node_dim=self.node_dim, time_dim=self.time_dim, num_layers=self.num_layers)

    def config(self, **overrides) -> TrainingConfig:
        values = dict(epochs=self.epochs, batch_size=16, seed=self.seed)
        values.update(overrides)
        return TrainingConfig(**values)


SMOKE = ExperimentScale(
    metro_nodes=6, metro_days=6, demand_nodes=6, demand_days=6,
    electricity_nodes=6, electricity_days=10, epochs=1, hidden_dim=8,
    node_dim=4, time_dim=4,
)

_REGISTRY: dict[str, Callable[[ExperimentScale], str]] = {}


def experiment(name: str):
    """Register an experiment function under ``name``."""

    def decorator(fn):
        _REGISTRY[name] = fn
        return fn

    return decorator


def list_experiments() -> list[str]:
    return sorted(_REGISTRY)


def run(name: str, scale: ExperimentScale | None = None) -> str:
    """Run a registered experiment; returns the rendered table/figure."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}; choose from {list_experiments()}") from None
    return fn(scale or ExperimentScale())


# --------------------------------------------------------------------- #
# the paper's artifacts
# --------------------------------------------------------------------- #

_METRO_METHODS = ("ha", "gbdt", "fclstm", "informer", "crossformer",
                  "dcrnn", "gwnet", "agcrn", "pvcgn", "esg", "tgcrn")
_DEMAND_METHODS = ("ha", "xgboost", "fclstm", "informer", "crossformer",
                   "dcrnn", "gwnet", "ccrnn", "gts", "esg", "tgcrn")
_ELECTRICITY_METHODS = ("gwnet", "agcrn", "informer", "crossformer", "esg", "tgcrn")
_VARIANTS = ("tgcrn", "wo_tagsl", "w_te", "wo_tdl", "wo_pdf", "time2vec", "ctr", "wo_encdec")


def _run_methods(task, methods, scale: ExperimentScale, config=None):
    config = config or scale.config()
    results = []
    for method in methods:
        kwargs = {}
        if method == "tgcrn" or method in _VARIANTS:
            kwargs["model_kwargs"] = scale.tgcrn_kwargs()
        else:
            kwargs["num_layers"] = scale.num_layers
        results.append(
            run_experiment(method, task, config, hidden_dim=scale.hidden_dim, **kwargs)
        )
    return results


def _metro_task(dataset: str, scale: ExperimentScale):
    return load_task(dataset, num_nodes=scale.metro_nodes, num_days=scale.metro_days,
                     seed=scale.seed)


@experiment("table4_hzmetro")
def table4_hzmetro(scale: ExperimentScale) -> str:
    task = _metro_task("hzmetro", scale)
    return format_metro_table(_run_methods(task, _METRO_METHODS, scale),
                              interval_minutes=task.spec.interval_minutes)


@experiment("table4_shmetro")
def table4_shmetro(scale: ExperimentScale) -> str:
    task = _metro_task("shmetro", scale)
    return format_metro_table(_run_methods(task, _METRO_METHODS, scale),
                              interval_minutes=task.spec.interval_minutes)


@experiment("table5_nyc_bike")
def table5_nyc_bike(scale: ExperimentScale) -> str:
    task = load_task("nyc_bike", num_nodes=scale.demand_nodes, num_days=scale.demand_days,
                     seed=scale.seed)
    return format_demand_table(_run_methods(task, _DEMAND_METHODS, scale))


@experiment("table5_nyc_taxi")
def table5_nyc_taxi(scale: ExperimentScale) -> str:
    task = load_task("nyc_taxi", num_nodes=scale.demand_nodes, num_days=scale.demand_days,
                     seed=scale.seed)
    return format_demand_table(_run_methods(task, _DEMAND_METHODS, scale))


@experiment("table6")
def table6_electricity(scale: ExperimentScale) -> str:
    task = load_task("electricity", num_nodes=scale.electricity_nodes,
                     num_days=scale.electricity_days, seed=scale.seed)
    return format_electricity_table(_run_methods(task, _ELECTRICITY_METHODS, scale))


@experiment("table7")
def table7_ablation(scale: ExperimentScale) -> str:
    task = _metro_task("hzmetro", scale)
    results = [
        run_experiment(name, task, scale.config(), hidden_dim=scale.hidden_dim,
                       model_kwargs=scale.tgcrn_kwargs())
        for name in _VARIANTS
    ]
    return format_ablation_table(results)


@experiment("table8")
def table8_cost(scale: ExperimentScale) -> str:
    from ..baselines import build_baseline
    from ..core import TGCRN

    task = _metro_task("hzmetro", scale)
    config = scale.config(epochs=min(2, scale.epochs))
    rows = []
    for name in ("dcrnn", "agcrn", "gwnet", "pvcgn", "esg"):
        result = run_experiment(name, task, config, hidden_dim=scale.hidden_dim,
                                num_layers=scale.num_layers)
        rows.append((name, result.num_parameters, result.seconds_per_epoch))
    result = run_experiment("tgcrn", task, config, hidden_dim=scale.hidden_dim,
                            model_kwargs=scale.tgcrn_kwargs())
    rows.append(("tgcrn", result.num_parameters, result.seconds_per_epoch))
    return format_cost_table(rows)


@experiment("fig8")
def fig8_multistep(scale: ExperimentScale) -> str:
    task = _metro_task("hzmetro", scale)
    methods = ("fclstm", "dcrnn", "agcrn", "esg", "tgcrn")
    results = _run_methods(task, methods, scale)
    curves = {r.model_name: r.horizon_metric("mae") for r in results}
    benchmark_curve = curves["fclstm"]
    lines = ["MAE relative to FC-LSTM"]
    for method in methods:
        lines.append(format_relative_series(method, curves[method], benchmark_curve))
    return "\n".join(lines)


@experiment("fig9")
def fig9_dims(scale: ExperimentScale) -> str:
    task = _metro_task("hzmetro", scale)
    lines = [f"{'d_v':>5} {'d_t':>5} | {'MAE':>7} {'#params':>9}"]
    for dv in (scale.node_dim // 2 or 2, scale.node_dim, scale.node_dim * 2):
        for dt in (scale.time_dim // 2 or 2, scale.time_dim):
            result = run_experiment(
                "tgcrn", task, scale.config(), hidden_dim=scale.hidden_dim,
                model_kwargs=dict(node_dim=dv, time_dim=dt, num_layers=scale.num_layers),
            )
            lines.append(f"{dv:>5} {dt:>5} | {result.overall.mae:7.2f} {result.num_parameters:9,d}")
    return "\n".join(lines)


@experiment("fig10")
def fig10_lambda(scale: ExperimentScale) -> str:
    task = _metro_task("hzmetro", scale)
    lines = [f"{'lambda':>7} | {'MAE':>7}"]
    for lam in (0.0, 0.1, 1.0):
        result = run_experiment(
            "tgcrn", task, scale.config(lambda_time=lam), hidden_dim=scale.hidden_dim,
            model_kwargs=scale.tgcrn_kwargs(),
        )
        lines.append(f"{lam:>7.2f} | {result.overall.mae:7.2f}")
    return "\n".join(lines)


@experiment("fig12")
def fig12_time_representation(scale: ExperimentScale) -> str:
    from ..core import DiscreteTimeEmbedding, TimeDiscrepancyLearner
    from ..nn import Adam
    from ..viz import ordering_score, tsne

    steps_per_day = 73
    encoder = DiscreteTimeEmbedding(steps_per_day, scale.time_dim, rng=np.random.default_rng(1))
    learner = TimeDiscrepancyLearner(encoder, np.random.default_rng(2), adjacent_range=4)
    optimizer = Adam([encoder.weight], lr=0.01)
    windows = np.arange(16)[None, :] + np.arange(0, steps_per_day * 4, 7)[:, None]
    for _ in range(max(100, scale.epochs * 25)):
        optimizer.zero_grad()
        loss = learner(windows)
        loss.backward()
        optimizer.step()
    trained = ordering_score(tsne(encoder.weight.data, iterations=300, seed=0))
    random_table = np.random.default_rng(9).normal(size=(steps_per_day, scale.time_dim))
    baseline = ordering_score(tsne(random_table, iterations=300, seed=0))
    return (
        "t-SNE ordering score (1 = sequential layout)\n"
        f"with TDL      {trained:.3f}\n"
        f"random table  {baseline:.3f}"
    )
