"""Module-walking gradient oracle.

Generalizes :func:`repro.autodiff.check_gradients` from "a flat list of
tensors" to "a whole model": :func:`check_module_gradients` walks
``module.named_parameters()``, runs one analytic backward pass, then
verifies each parameter against central finite differences.  For large
parameter tensors a *sampled-coordinate* mode checks a random subset of
coordinates, which makes full-model checks of TGCRN and the baselines
tractable inside tier-1 time budgets while still touching every parameter
tensor.

Guards built in:

* non-float parameters are rejected up front (perturbing an integer tensor
  rounds the perturbation away and yields a spurious zero gradient);
* non-finite losses or gradients fail the check explicitly instead of
  poisoning the comparison;
* every perturbation is restored under ``try/finally`` so a crash inside
  the loss closure can never leave the model corrupted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..autodiff import Tensor, no_grad
from ..nn import Module

__all__ = ["GradientCheckReport", "ParameterCheck", "check_module_gradients"]


@dataclass
class ParameterCheck:
    """Outcome of checking one parameter tensor."""

    name: str
    size: int
    coords_checked: int
    max_abs_err: float
    max_rel_err: float
    passed: bool
    note: str = ""

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        extra = f"  ({self.note})" if self.note else ""
        return (
            f"{status:4s} {self.name:<40s} {self.coords_checked:4d}/{self.size:<6d} coords"
            f"  max|Δ| {self.max_abs_err:.3e}{extra}"
        )


@dataclass
class GradientCheckReport:
    """Aggregated result of :func:`check_module_gradients`."""

    checks: list[ParameterCheck] = field(default_factory=list)
    loss_value: float = float("nan")
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[ParameterCheck]:
        return [check for check in self.checks if not check.passed]

    @property
    def coords_checked(self) -> int:
        return sum(check.coords_checked for check in self.checks)

    def raise_if_failed(self) -> None:
        if not self.passed:
            lines = "\n".join(str(check) for check in self.failures)
            raise AssertionError(f"gradient oracle found mismatches:\n{lines}")

    def __str__(self) -> str:
        lines = [str(check) for check in self.checks]
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(
            f"gradient oracle {verdict}: {len(self.checks)} parameters, "
            f"{self.coords_checked} coordinates, loss {self.loss_value:.6g}, "
            f"{self.seconds:.2f}s"
        )
        return "\n".join(lines)


def _select_coordinates(
    size: int, max_coords: int | None, rng: np.random.Generator
) -> np.ndarray:
    if max_coords is None or size <= max_coords:
        return np.arange(size)
    return rng.choice(size, size=max_coords, replace=False)


def check_module_gradients(
    module: Module,
    loss_fn: Callable[[], Tensor],
    *,
    epsilon: float = 1e-5,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    max_coords_per_param: int | None = 8,
    rng: np.random.Generator | None = None,
    parameters: Sequence[tuple[str, Tensor]] | None = None,
) -> GradientCheckReport:
    """Verify every parameter of ``module`` against finite differences.

    Parameters
    ----------
    module:
        The model under test; walked via ``named_parameters()`` (shared
        parameters are visited once).
    loss_fn:
        Zero-argument closure returning a *scalar* loss Tensor.  It must
        rebuild the graph on every call — it is invoked repeatedly with
        perturbed parameter payloads — and must be deterministic (fix any
        RNG it consumes), otherwise finite differences measure noise.
    epsilon / rtol / atol:
        Central-difference step and ``|analytic − numeric| ≤ atol +
        rtol·|numeric|`` tolerances.
    max_coords_per_param:
        Sampled-coordinate mode: at most this many randomly chosen
        coordinates are finite-differenced per parameter tensor (``None``
        checks every coordinate — the exhaustive / ``slow`` mode).
    rng:
        Generator for coordinate sampling (default: seeded fresh, so the
        check itself is deterministic).
    parameters:
        Optional explicit ``(name, tensor)`` pairs overriding the module
        walk (used to focus on a submodule).

    Returns
    -------
    GradientCheckReport
        Per-parameter outcomes; call ``raise_if_failed()`` to assert.
    """
    start = time.perf_counter()
    rng = rng if rng is not None else np.random.default_rng(0)
    named = list(parameters) if parameters is not None else list(module.named_parameters())
    if not named:
        raise ValueError("module has no parameters to check")
    for name, param in named:
        if not np.issubdtype(param.data.dtype, np.floating):
            raise TypeError(
                f"parameter {name!r} has non-float dtype {param.data.dtype}; "
                "the gradient oracle only checks floating-point parameters"
            )

    module.zero_grad()
    loss = loss_fn()
    if loss.size != 1:
        raise ValueError(f"loss_fn must return a scalar, got shape {loss.shape}")
    loss_value = float(loss.item())
    report = GradientCheckReport(loss_value=loss_value)
    if not np.isfinite(loss_value):
        report.checks.append(
            ParameterCheck("<loss>", 1, 0, float("inf"), float("inf"), False, "non-finite loss")
        )
        report.seconds = time.perf_counter() - start
        return report
    loss.backward()
    analytic = {
        name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
        for name, param in named
    }

    for name, param in named:
        grad = analytic[name]
        if not np.all(np.isfinite(grad)):
            report.checks.append(
                ParameterCheck(
                    name, param.size, 0, float("inf"), float("inf"), False,
                    "non-finite analytic gradient",
                )
            )
            continue
        coords = _select_coordinates(param.size, max_coords_per_param, rng)
        flat = param.data.flat
        grad_flat = grad.reshape(-1)
        max_abs_err = 0.0
        max_rel_err = 0.0
        passed = True
        note = ""
        for i in coords:
            i = int(i)
            original = flat[i]
            try:
                with no_grad():
                    flat[i] = original + epsilon
                    plus = float(loss_fn().item())
                    flat[i] = original - epsilon
                    minus = float(loss_fn().item())
            finally:
                flat[i] = original
            numeric = (plus - minus) / (2.0 * epsilon)
            if not np.isfinite(numeric):
                passed, note = False, "non-finite numeric gradient"
                max_abs_err = max_rel_err = float("inf")
                break
            err = abs(grad_flat[i] - numeric)
            max_abs_err = max(max_abs_err, err)
            scale = max(abs(grad_flat[i]), abs(numeric), 1e-12)
            max_rel_err = max(max_rel_err, err / scale)
            if err > atol + rtol * abs(numeric):
                passed = False
        report.checks.append(
            ParameterCheck(name, param.size, len(coords), max_abs_err, max_rel_err, passed, note)
        )

    report.seconds = time.perf_counter() - start
    return report
