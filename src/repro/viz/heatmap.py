"""Text heatmaps of adjacency matrices.

Fig. 2 and Fig. 11 compare learned time-aware adjacencies with ground-
truth OD transfer heat maps; with no display available, matrices render
as unicode-shade grids plus a numeric similarity score.
"""

from __future__ import annotations

import numpy as np

_SHADES = " .:-=+*#%@"


def render_heatmap(matrix: np.ndarray, labels: list[str] | None = None, title: str = "") -> str:
    """ASCII-art heat map; values min-max scaled into ten shades."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("heatmap expects a 2-D matrix")
    lo, hi = matrix.min(), matrix.max()
    span = hi - lo if hi > lo else 1.0
    scaled = ((matrix - lo) / span * (len(_SHADES) - 1)).astype(int)
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(scaled):
        prefix = f"{labels[i]:>6} " if labels else ""
        lines.append(prefix + "".join(_SHADES[v] * 2 for v in row))
    return "\n".join(lines)


def matrix_correlation(a: np.ndarray, b: np.ndarray, exclude_diagonal: bool = True) -> float:
    """Pearson correlation between two matrices' off-diagonal entries.

    Used to score how well the learned A^t tracks the ground-truth OD
    matrix at the same timestamp (the quantitative form of Fig. 11).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if exclude_diagonal:
        mask = ~np.eye(a.shape[0], dtype=bool)
        a, b = a[mask], b[mask]
    else:
        a, b = a.reshape(-1), b.reshape(-1)
    if a.std() < 1e-12 or b.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two rendered heat maps horizontally for visual comparison."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    width = max((len(l) for l in left_lines), default=0)
    rows = []
    for i in range(height):
        l = left_lines[i] if i < len(left_lines) else ""
        r = right_lines[i] if i < len(right_lines) else ""
        rows.append(l.ljust(width + gap) + r)
    return "\n".join(rows)
