"""Divergence sentinel checks and GuardedTrainer rollback/backoff."""

import json
import math

import numpy as np
import pytest

from repro.core import TGCRN
from repro.data import load_task
from repro.resilience import (
    DivergenceDetected,
    DivergenceSentinel,
    GuardedTrainer,
    NaNGradientInjector,
    TrainingDivergedError,
)
from repro.training import Trainer, TrainingConfig
from repro.verify import named_rng

SEED = 5


def _task():
    return load_task("hzmetro", num_nodes=4, num_days=4, seed=SEED)


def _model(task):
    return TGCRN(
        num_nodes=task.num_nodes, in_dim=task.in_dim, out_dim=task.out_dim,
        horizon=task.horizon, hidden_dim=4, num_layers=1, node_dim=3,
        time_dim=3, steps_per_day=task.steps_per_day,
        rng=named_rng(SEED, "guard-test-model"),
    )


class TestDivergenceSentinel:
    def test_clean_batch_passes(self):
        DivergenceSentinel().on_batch(0, 0, loss=1.0, grad_norm=2.0)

    @pytest.mark.parametrize("loss", [float("nan"), float("inf"), -float("inf")])
    def test_nonfinite_loss(self, loss):
        with pytest.raises(DivergenceDetected, match="nonfinite_loss"):
            DivergenceSentinel().on_batch(3, 7, loss=loss, grad_norm=1.0)

    def test_loss_explosion_threshold(self):
        sentinel = DivergenceSentinel(loss_max=100.0)
        sentinel.on_batch(0, 0, loss=99.0, grad_norm=1.0)
        with pytest.raises(DivergenceDetected, match="loss_explosion"):
            sentinel.on_batch(0, 1, loss=101.0, grad_norm=1.0)

    def test_grad_explosion_and_nan_grad(self):
        sentinel = DivergenceSentinel(grad_norm_max=10.0)
        with pytest.raises(DivergenceDetected, match="grad_explosion"):
            sentinel.on_batch(0, 0, loss=1.0, grad_norm=11.0)
        with pytest.raises(DivergenceDetected, match="nonfinite_grad"):
            sentinel.on_batch(0, 0, loss=1.0, grad_norm=float("nan"))

    def test_nonfinite_validation(self):
        with pytest.raises(DivergenceDetected, match="nonfinite_validation"):
            DivergenceSentinel().on_epoch(2, 1.0, float("nan"), 1.0)

    def test_val_stall_detection_and_reset(self):
        sentinel = DivergenceSentinel(stall_epochs=2)
        sentinel.on_epoch(0, 1.0, val_mae=5.0, best_val_mae=math.inf)
        sentinel.on_epoch(1, 1.0, val_mae=5.0, best_val_mae=5.0)  # stall 1
        with pytest.raises(DivergenceDetected, match="val_stall"):
            sentinel.on_epoch(2, 1.0, val_mae=5.1, best_val_mae=5.0)  # stall 2
        sentinel.reset()
        sentinel.on_epoch(3, 1.0, val_mae=5.2, best_val_mae=5.0)  # fresh count

    def test_exception_is_structured(self):
        with pytest.raises(DivergenceDetected) as excinfo:
            DivergenceSentinel().on_batch(4, 2, loss=float("nan"), grad_norm=1.0)
        exc = excinfo.value
        assert (exc.reason, exc.epoch, exc.batch) == ("nonfinite_loss", 4, 2)
        assert math.isnan(exc.value)


class TestGuardedTrainer:
    def test_requires_checkpoint_path(self):
        guarded = GuardedTrainer(Trainer(TrainingConfig(epochs=1)))
        with pytest.raises(ValueError, match="checkpoint_path"):
            guarded.fit(object(), _task())

    def test_nan_gradient_triggers_rollback_and_lr_backoff(self, tmp_path):
        task = _task()
        log = tmp_path / "run.jsonl"
        config = TrainingConfig(epochs=3, batch_size=8, seed=SEED,
                                checkpoint_path=str(tmp_path / "state.npz"),
                                log_path=str(log))
        guarded = GuardedTrainer(Trainer(config), max_retries=2, lr_backoff=0.5)
        history = guarded.fit(_model(task), task,
                              fault_hook=NaNGradientInjector(epoch=1, batch=0))

        assert history.epochs_run == 3  # recovered and finished
        assert len(guarded.events) == 1
        assert guarded.events[0].reason == "nonfinite_grad"
        assert guarded.events[0].epoch == 1
        # Epoch 0 ran at the base lr; the retried epochs at half of it.
        assert history.lrs[0] == pytest.approx(config.lr)
        assert history.lrs[1] == pytest.approx(config.lr * 0.5)
        assert np.all(np.isfinite(history.train_losses))

        events = [json.loads(line)["event"] for line in log.open()]
        for expected in ("divergence", "rollback", "resume", "lr_backoff", "recovered"):
            assert expected in events, f"missing {expected!r} in {events}"

    def test_parameters_never_see_injected_nan(self, tmp_path):
        """The sentinel fires before optimizer.step, so weights stay finite."""
        task = _task()
        config = TrainingConfig(epochs=2, batch_size=8, seed=SEED,
                                checkpoint_path=str(tmp_path / "state.npz"))
        guarded = GuardedTrainer(Trainer(config), max_retries=1)
        model = _model(task)
        guarded.fit(model, task, fault_hook=NaNGradientInjector(epoch=0, batch=1))
        assert all(np.all(np.isfinite(p.data)) for p in model.parameters())

    def test_bounded_retries_raise_structured_failure(self, tmp_path):
        task = _task()
        log = tmp_path / "run.jsonl"
        config = TrainingConfig(epochs=2, batch_size=8, seed=SEED,
                                checkpoint_path=str(tmp_path / "state.npz"),
                                log_path=str(log))
        guarded = GuardedTrainer(Trainer(config), max_retries=1, lr_backoff=0.5)
        with pytest.raises(TrainingDivergedError) as excinfo:
            guarded.fit(_model(task), task,
                        fault_hook=NaNGradientInjector(epoch=0, once=False))
        assert len(excinfo.value.events) == 2  # initial attempt + 1 retry
        assert all(e.reason == "nonfinite_grad" for e in excinfo.value.events)
        events = [json.loads(line)["event"] for line in log.open()]
        assert "giving_up" in events

    def test_delegates_predict_and_config(self, tmp_path):
        config = TrainingConfig(epochs=1, checkpoint_path=str(tmp_path / "s.npz"))
        trainer = Trainer(config)
        guarded = GuardedTrainer(trainer)
        assert guarded.config is config
        assert guarded.predict.__self__ is trainer or callable(guarded.predict)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            GuardedTrainer(max_retries=-1)
        with pytest.raises(ValueError):
            GuardedTrainer(lr_backoff=0.0)
        with pytest.raises(ValueError):
            DivergenceSentinel(grad_norm_max=0.0)
        with pytest.raises(ValueError):
            DivergenceSentinel(stall_epochs=0)
