"""Fig. 10: sensitivity to the joint-loss weight λ (Eq. 17).

Sweeps λ over the paper's range.  Expected shape (paper): a turning point
around λ ≈ 0.1 — a moderate amount of time-discrepancy regularization
helps, a dominant auxiliary loss hurts.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, run_experiment

LAMBDAS = (0.0, 0.01, 0.1, 0.5, 1.0)


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    lines = [f"{'lambda':>7} | {'MAE':>7} {'RMSE':>8} {'MAPE%':>7}", "-" * 36]
    for lam in LAMBDAS:
        config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0, lambda_time=lam)
        result = run_experiment(
            "tgcrn", task, config, hidden_dim=s.hidden_dim, model_kwargs=tgcrn_kwargs(s)
        )
        lines.append(
            f"{lam:>7.2f} | {result.overall.mae:7.2f} "
            f"{result.overall.rmse:8.2f} {result.overall.mape:7.2f}"
        )
    return "\n".join(lines)


def test_fig10_lambda(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig10_lambda", out)
