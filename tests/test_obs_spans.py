"""Causal span tracing: propagation, handoffs, collection, server trees.

Covers the two propagation mechanisms (contextvars on one thread,
explicit ``Span`` capture across thread handoffs), the strict no-op
contract when nothing is collecting, unfinished/orphan evidence, the
Chrome-trace merge, and — end to end — that a threaded
:class:`~repro.serve.ForecastServer` produces one complete single-rooted
tree per request.
"""

import threading

import pytest

from repro.core import TGCRN
from repro.obs import (
    SpanCollector,
    collect_spans,
    current_span,
    finish_span,
    is_collecting,
    span,
    start_span,
    use_span,
)
from repro.obs.report import assemble_traces, check_request_traces
from repro.serve import CircuitBreaker, ForecastServer
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


def _records(collector, name=None):
    if name is None:
        return collector.records
    return [r for r in collector.records if r["name"] == name]


class TestNoCollector:
    def test_everything_is_a_noop_without_a_collector(self):
        assert not is_collecting()
        opened = start_span("orphan")
        assert opened is None
        finish_span(opened)  # must not raise
        with span("block") as s:
            assert s is None
        with use_span(None) as s:
            assert s is None
        assert current_span() is None


class TestContextvarPropagation:
    def test_span_blocks_nest_into_one_tree(self):
        with collect_spans() as collector:
            with span("fit") as fit:
                with span("epoch") as epoch:
                    child = start_span("step")
                    finish_span(child, loss=0.5)
            (step,) = _records(collector, "step")
            (ep,) = _records(collector, "epoch")
            (root,) = _records(collector, "fit")
        assert step["parent_id"] == epoch.span_id
        assert ep["parent_id"] == fit.span_id
        assert root["parent_id"] is None
        assert step["trace_id"] == ep["trace_id"] == root["trace_id"]
        assert step["attrs"] == {"loss": 0.5}

    def test_explicit_parent_beats_contextvar_and_inherit_false_roots(self):
        with collect_spans():
            with span("outer") as outer:
                with span("inner"):
                    adopted = start_span("adopted", parent=outer)
                    fresh = start_span("fresh", inherit=False)
            finish_span(adopted)
            finish_span(fresh)
        assert adopted.parent_id == outer.span_id
        assert fresh.parent_id is None
        assert fresh.trace_id == fresh.span_id

    def test_exception_marks_span_error_and_restores_current(self):
        with collect_spans() as collector:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
            assert current_span() is None
            (rec,) = _records(collector, "doomed")
        assert rec["status"] == "error"
        assert rec["end"] is not None

    def test_finish_is_idempotent(self):
        with collect_spans() as collector:
            opened = start_span("once")
            finish_span(opened, at=opened.start + 1.0)
            finish_span(opened, at=opened.start + 99.0, status="error")
        (rec,) = collector.records
        assert rec["duration_ms"] == pytest.approx(1000.0)
        assert rec["status"] == "ok"


class TestThreadHandoff:
    def test_contextvars_do_not_cross_threads_but_captured_spans_do(self):
        seen = {}

        def worker(captured):
            # contextvar did NOT flow to this thread...
            seen["inherited"] = current_span()
            # ...but resuming the captured Span restores causality.
            with use_span(captured):
                child = start_span("stage")
                finish_span(child)
                seen["child"] = child

        with collect_spans():
            root = start_span("request", trace_id="req-x")
            t = threading.Thread(target=worker, args=(root,), name="hand-off")
            t.start()
            t.join()
            finish_span(root)

        assert seen["inherited"] is None
        assert seen["child"].parent_id == root.span_id
        assert seen["child"].trace_id == "req-x"
        assert seen["child"].thread == "hand-off"
        assert root.thread != "hand-off"

    def test_use_span_restores_previous_current_on_exit(self):
        with collect_spans():
            with span("outer") as outer:
                detached = start_span("detached", inherit=False)
                with use_span(detached):
                    assert current_span() is detached
                assert current_span() is outer
                finish_span(detached)


class TestCollector:
    def test_close_flushes_open_spans_as_unfinished(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        collector = SpanCollector(path=path).install()
        done = start_span("done")
        finish_span(done)
        start_span("leaked")  # never finished — simulated crash
        collector.close()

        from repro.obs.report import load_spans

        records = {r["name"]: r for r in load_spans(path)}
        assert records["done"]["status"] == "ok"
        assert records["leaked"]["status"] == "unfinished"
        assert records["leaked"]["end"] is None

    def test_chrome_events_align_to_origin_and_skip_unfinished(self):
        with collect_spans() as collector:
            opened = start_span("work", at=10.0)
            finish_span(opened, at=10.005)
            start_span("leak", at=10.0)
        events = collector.chrome_events(origin=10.0)
        (event,) = events  # unfinished span excluded
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(5000.0)  # microseconds
        assert event["args"]["trace_id"] == opened.trace_id

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SpanCollector(path=None, mode="x")


class TestOrphanDetection:
    def test_missing_parent_surfaces_as_orphan(self):
        with collect_spans() as collector:
            root = start_span("request", trace_id="req-1")
            child = start_span("stage", parent=root)
            finish_span(child)
            finish_span(root)
        records = list(collector.records)
        # Drop the root from the stream: the child's parent never appears.
        broken = [r for r in records if r["name"] != "request"]
        trees = assemble_traces(broken)
        tree = trees["req-1"]
        assert tree.roots == []
        assert [n.name for n in tree.orphans] == ["stage"]


class TestServerSpans:
    """End to end: the threaded serving path emits complete trees."""

    @pytest.fixture
    def threaded_server(self, tiny_task):
        model = TGCRN(
            **default_tgcrn_kwargs(
                tiny_task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
            rng=named_rng(3, "span-server"),
        )
        server = ForecastServer(
            model, tiny_task, queue_depth=16, max_batch=4,
            breaker=CircuitBreaker(failure_threshold=3, cooldown=10.0),
        )
        yield server
        server.stop(drain=False)

    def test_worker_thread_requests_form_complete_trees(
            self, tiny_task, threaded_server):
        collector = SpanCollector().install()
        try:
            threaded_server.start(poll_interval=0.002)
            for i in range(8):
                j = i % len(tiny_task.test)
                threaded_server.submit({
                    "window": tiny_task.test.inputs[j],
                    "time_index": tiny_task.test.time_indices[j],
                    "id": f"req-{i}",
                })
            threaded_server.stop(drain=True)
        finally:
            collector.close()

        trees = assemble_traces(collector.records)
        check = check_request_traces(trees)
        assert check.total == 8
        assert check.ok, check.to_dict()
        assert check.orphan_spans == 0 and check.unfinished_spans == 0
        # Submission happened here; the stages ran on the worker thread —
        # the tree is stitched across that handoff.
        threads = {r["thread"] for r in collector.records}
        assert len(threads) >= 2, threads
        tree = trees["req-0"]
        stages = {c.name for c in tree.root.children}
        assert {"admission", "queue_wait"} <= stages
        assert "predict" in stages or "fallback" in stages

    def test_rejected_submission_still_closes_its_tree(
            self, tiny_task, threaded_server):
        with collect_spans() as collector:
            with pytest.raises(Exception):
                threaded_server.submit({"id": "bad-1"})  # no window
        trees = assemble_traces(collector.records)
        check = check_request_traces(trees)
        assert check.total == 1 and check.ok, check.to_dict()
        (tree,) = trees.values()
        assert tree.root.status == "rejected"
