"""Causal span tracing: one tree per request / training step.

The op tracer (:mod:`repro.obs.trace`) answers "which *operation* is
hot"; spans answer "where did this *request* spend its time".  A span is
a named interval with a parent, so a full serving round reconstructs as::

    request req-17                      41.8 ms
    ├── admission                        0.2 ms
    ├── queue_wait                       8.1 ms
    ├── batch_assembly                   0.4 ms
    └── predict                         32.9 ms
        └── engine_replay               30.1 ms

Two propagation mechanisms, used together:

* **contextvars** — ``with span("epoch"):`` makes the span the implicit
  parent for anything opened on the same thread/task underneath it (the
  trainer's epoch → step → validate nesting, and the engine's
  capture/replay spans).
* **explicit context capture** — across thread handoffs contextvars do
  *not* flow, so event-driven code (the ``ForecastServer`` worker
  thread, queue enqueue/dequeue, batcher merge) holds :class:`Span`
  objects explicitly and resumes them with ``parent=`` /
  :func:`use_span` on whatever thread the next stage runs.

Spans only exist while a :class:`SpanCollector` is installed
(:func:`collect_spans`); otherwise every entry point returns ``None``
and the hot paths pay one truthiness check.  Timestamps come from
``perf_counter`` — the same timebase as the op tracer, so
:meth:`SpanCollector.chrome_events` merges into the op-level Chrome
trace with correct alignment — and every helper takes an ``at=``
override for deterministic tests.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

__all__ = [
    "Span",
    "SpanCollector",
    "collect_spans",
    "current_span",
    "finish_span",
    "is_collecting",
    "span",
    "start_span",
    "use_span",
]

_IDS = itertools.count(1)
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)
_COLLECTORS: list["SpanCollector"] = []
_LOCK = threading.Lock()


@dataclass
class Span:
    """One named interval in a causal tree.

    ``trace_id`` groups a whole tree (for serving it is the request id);
    ``parent_id`` is ``None`` exactly at the root.  ``start``/``end`` are
    ``perf_counter`` seconds; ``end is None`` while the span is open.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    status: str = "ok"
    thread: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float | None:
        return None if self.end is None else (self.end - self.start) * 1e3

    def to_record(self) -> dict:
        record = {
            "event": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "thread": self.thread,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


def is_collecting() -> bool:
    """Whether at least one :class:`SpanCollector` is installed."""
    return bool(_COLLECTORS)


def current_span() -> Span | None:
    """The contextvar-propagated span enclosing the caller (or None)."""
    return _CURRENT.get()


def start_span(
    name: str,
    *,
    parent: Span | None = None,
    inherit: bool = True,
    trace_id: str | None = None,
    attrs: dict | None = None,
    at: float | None = None,
) -> Span | None:
    """Open a span; returns ``None`` when no collector is installed.

    ``parent`` wins over the contextvar current span; pass
    ``inherit=False`` to force a new root even when a current span
    exists.  ``trace_id`` defaults to the parent's trace (or a fresh id
    at a root).  ``at`` backdates the start for event-driven callers
    that measured the moment before deciding to open the span.
    """
    if not _COLLECTORS:
        return None
    if parent is None and inherit:
        parent = _CURRENT.get()
    span_id = f"s{next(_IDS):06d}"
    if trace_id is None:
        trace_id = parent.trace_id if parent is not None else span_id
    opened = Span(
        name=name,
        trace_id=str(trace_id),
        span_id=span_id,
        parent_id=parent.span_id if parent is not None else None,
        start=perf_counter() if at is None else at,
        thread=threading.current_thread().name,
        attrs=dict(attrs or {}),
    )
    with _LOCK:
        for collector in _COLLECTORS:
            collector._on_start(opened)
    return opened


def finish_span(span_obj: Span | None, status: str | None = None,
                at: float | None = None, **attrs) -> None:
    """Close a span and report it to every installed collector.

    Safe on ``None`` (no collector was installed at start time) and
    idempotent (a span already finished stays finished) — event-driven
    code can defensively close on every exit path.
    """
    if span_obj is None or span_obj.end is not None:
        return
    span_obj.end = perf_counter() if at is None else at
    if status is not None:
        span_obj.status = status
    if attrs:
        span_obj.attrs.update(attrs)
    with _LOCK:
        for collector in _COLLECTORS:
            collector._on_finish(span_obj)


@contextlib.contextmanager
def span(name: str, *, parent: Span | None = None, trace_id: str | None = None,
         attrs: dict | None = None):
    """Open a span for the enclosed block and make it the current span.

    Yields the :class:`Span` (or ``None`` when nothing is collecting —
    the block still runs, unobserved).  An escaping exception marks the
    span ``status="error"`` before re-raising.
    """
    opened = start_span(name, parent=parent, trace_id=trace_id, attrs=attrs)
    if opened is None:
        yield None
        return
    token = _CURRENT.set(opened)
    try:
        yield opened
    except BaseException:
        _CURRENT.reset(token)
        finish_span(opened, status="error")
        raise
    else:
        _CURRENT.reset(token)
        finish_span(opened)


@contextlib.contextmanager
def use_span(span_obj: Span | None):
    """Reattach an *open* span as the current span on this thread.

    The explicit half of context propagation: a producer thread captures
    ``Span`` objects (e.g. per queued request), and the consumer thread
    wraps each stage in ``with use_span(captured):`` so everything it
    opens nests under the right request.  Does not finish the span.
    """
    if span_obj is None:
        yield None
        return
    token = _CURRENT.set(span_obj)
    try:
        yield span_obj
    finally:
        _CURRENT.reset(token)


class SpanCollector:
    """Thread-safe sink of finished spans with optional JSONL emission.

    Records land in :attr:`records` (insertion order = finish order) and,
    when ``path`` is given, are appended to a JSONL file one object per
    span — the stream ``repro.obs.report`` and the ``obs-report`` CLI
    consume.  Spans still open when the collector closes are flushed
    with ``status="unfinished"`` and ``end=None`` so a crash mid-request
    leaves evidence instead of silence.
    """

    def __init__(self, path: str | Path | None = None, mode: str = "w"):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path) if path is not None else None
        self.records: list[dict] = []
        self._open: dict[str, Span] = {}
        self._records_lock = threading.Lock()
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open(mode)

    # -- collector protocol (called under the module lock) --------------- #

    def _on_start(self, span_obj: Span) -> None:
        with self._records_lock:
            self._open[span_obj.span_id] = span_obj

    def _on_finish(self, span_obj: Span) -> None:
        with self._records_lock:
            self._open.pop(span_obj.span_id, None)
            self._write(span_obj.to_record())

    def _write(self, record: dict) -> None:
        # Callers hold self._records_lock.
        import json

        record = dict(record)
        record["ts"] = time.time()  # analyze: allow[RL009] wall timestamp for cross-file correlation
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, allow_nan=True) + "\n")
            self._fh.flush()

    # -- lifecycle ------------------------------------------------------- #

    def install(self) -> "SpanCollector":
        with _LOCK:
            if self not in _COLLECTORS:
                _COLLECTORS.append(self)
        return self

    def uninstall(self) -> None:
        with _LOCK:
            if self in _COLLECTORS:
                _COLLECTORS.remove(self)

    def close(self) -> None:
        """Uninstall, flush still-open spans as unfinished, close the file."""
        self.uninstall()
        with self._records_lock:
            for span_obj in self._open.values():
                record = span_obj.to_record()
                record["status"] = "unfinished"
                self._write(record)
            self._open.clear()
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- export ---------------------------------------------------------- #

    def chrome_events(self, origin: float = 0.0, pid: int = 1) -> list[dict]:
        """Finished spans as Chrome-trace ``X`` events.

        ``origin`` should be the op tracer's origin (``Tracer.origin``)
        when merging span and op events into one trace — both timebases
        are ``perf_counter``, so the alignment is exact.  Spans get one
        ``tid`` per source thread, offset away from the op tracer's
        ``tid=1``.
        """
        tids: dict[str, int] = {}
        events = []
        with self._records_lock:
            records = list(self.records)
        for record in records:
            if record.get("end") is None:
                continue
            tid = tids.setdefault(record["thread"], 100 + len(tids))
            events.append({
                "name": f"{record['name']} [{record['trace_id']}]",
                "cat": "span",
                "ph": "X",
                "ts": (record["start"] - origin) * 1e6,
                "dur": (record["end"] - record["start"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {k: record[k] for k in ("trace_id", "span_id", "parent_id", "status")},
            })
        return events

    def __enter__(self) -> "SpanCollector":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()


@contextlib.contextmanager
def collect_spans(path: str | Path | None = None, mode: str = "w"):
    """Install a :class:`SpanCollector` for the enclosed region."""
    collector = SpanCollector(path=path, mode=mode)
    collector.install()
    try:
        yield collector
    finally:
        collector.close()
