"""Dataset persistence: save/load generated datasets and export to CSV.

Generating SHMetro-scale data takes a minute; caching to ``.npz`` makes
repeated benchmark runs cheap, and CSV export lets external tools (or a
referee) inspect the series.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import numpy as np

from ..ioutil import atomic_savez, atomic_write_text
from .synthetic import SyntheticConfig, SyntheticDataset


def save_dataset(path: str | Path, dataset: SyntheticDataset) -> None:
    """Serialize a generated dataset (values + calendar + geography).

    The generator reference is captured through its config, so
    ``load_dataset`` can rebuild ground-truth OD matrices on demand.
    The write is atomic (temp file + ``os.replace``): an interrupted run
    can never leave a truncated cache that poisons later benchmarks.
    """
    config_json = "{}"
    generator_cls = ""
    if dataset.config is not None:
        config_json = json.dumps(dataset.config.__dict__)
    if dataset.generator is not None:
        generator_cls = type(dataset.generator).__name__
    atomic_savez(
        path,
        dict(
            values=dataset.values,
            time_index=dataset.time_index,
            slot_of_day=dataset.slot_of_day,
            day_of_week=dataset.day_of_week,
            coordinates=dataset.coordinates,
            areas=dataset.areas,
            line_edges=np.array(dataset.line_edges, dtype=np.int64).reshape(-1, 2),
            config=np.frombuffer(config_json.encode(), dtype=np.uint8),
            generator_cls=np.frombuffer(generator_cls.encode(), dtype=np.uint8),
        ),
    )


def load_dataset(
    path: str | Path,
    retries: int = 0,
    retry_wait: float = 0.0,
    reader=None,
    backoff=None,
) -> SyntheticDataset:
    """Rebuild a dataset saved by :func:`save_dataset` (incl. generator).

    ``retries`` re-attempts the read on transient ``OSError`` (flaky
    network filesystems, NFS timeouts); a missing file is never retried.
    Delays run through the :class:`~repro.resilience.backoff.Backoff`
    seam — pass ``backoff`` to control the schedule (and, in tests, the
    sleep/rng), or just ``retry_wait`` for a fixed delay between
    attempts.  ``reader`` overrides the archive opener (the
    fault-injection seam used by ``repro.resilience.chaos``).
    """
    # Lazy import: repro.resilience's package init pulls in the trainer,
    # which imports repro.data — a module-level import would be circular.
    from ..resilience.backoff import Backoff, retry_call

    from . import synthetic

    reader = reader or np.load
    if backoff is None:
        backoff = Backoff(base=retry_wait, factor=1.0, jitter=0.0)
    archive = retry_call(
        lambda: reader(Path(path)),
        retries=retries,
        backoff=backoff,
        retryable=(OSError,),
        no_retry=(FileNotFoundError,),
    )

    with archive:
        config_json = bytes(archive["config"].tobytes()).decode()
        generator_cls = bytes(archive["generator_cls"].tobytes()).decode()
        config_dict = json.loads(config_json)
        if "area_fractions" in config_dict:
            config_dict["area_fractions"] = tuple(config_dict["area_fractions"])
        config = SyntheticConfig(**config_dict) if config_dict else None
        generator = getattr(synthetic, generator_cls)(config) if generator_cls and config else None
        return SyntheticDataset(
            values=archive["values"],
            time_index=archive["time_index"],
            slot_of_day=archive["slot_of_day"],
            day_of_week=archive["day_of_week"],
            coordinates=archive["coordinates"],
            areas=archive["areas"],
            line_edges=[tuple(edge) for edge in archive["line_edges"]],
            config=config,
            generator=generator,
        )


def export_csv(path: str | Path, dataset: SyntheticDataset, feature_names: list[str] | None = None) -> None:
    """Flatten a dataset to long-form CSV: step, slot, dow, node, features."""
    total, nodes, dims = dataset.values.shape
    names = feature_names or [f"feature_{d}" for d in range(dims)]
    if len(names) != dims:
        raise ValueError(f"expected {dims} feature names, got {len(names)}")
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(["step", "slot_of_day", "day_of_week", "node"] + names)
    for t in range(total):
        for n in range(nodes):
            writer.writerow(
                [t, int(dataset.slot_of_day[t]), int(dataset.day_of_week[t]), n]
                + [f"{v:.6g}" for v in dataset.values[t, n]]
            )
    atomic_write_text(Path(path), buffer.getvalue())
