"""Legacy setup shim.

The sandboxed environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-use-pep517`` work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of TGCRN: Learning Time-aware Graph Structures for "
        "Spatially Correlated Time Series Forecasting (ICDE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
