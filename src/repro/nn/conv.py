"""1-D temporal convolutions (dilated + causal) for TCN-style baselines.

Graph WaveNet and ESG capture temporal dependencies with stacked dilated
1-D convolutions; this module provides the primitive.  The input layout is
``(batch, time, channels)``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, zeros
from . import init
from .module import Module, Parameter


class Conv1d(Module):
    """Causal dilated 1-D convolution over the time axis.

    Implemented as a sum of shifted linear maps — for the small kernel
    sizes used here (2–3) this is both simple and fast with numpy matmul.
    Output has the same temporal length as the input (left zero-padding).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        bias: bool = True,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.weight = Parameter(init.xavier_uniform((kernel_size, in_channels, out_channels), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @property
    def receptive_field(self) -> int:
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        pad = (self.kernel_size - 1) * self.dilation
        if pad:
            padding = zeros(batch, pad, self.in_channels)
            x = concat([padding, x], axis=1)
        out = None
        for tap in range(self.kernel_size):
            start = tap * self.dilation
            window = x[:, start : start + steps, :]
            term = window @ self.weight[tap]
            out = term if out is None else out + term
        if self.bias is not None:
            out = out + self.bias
        return out


class GatedTCNBlock(Module):
    """WaveNet-style gated activation unit: tanh(conv) * sigmoid(conv)."""

    def __init__(self, channels: int, kernel_size: int = 2, dilation: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.filter_conv = Conv1d(channels, channels, kernel_size, dilation, rng=rng)
        self.gate_conv = Conv1d(channels, channels, kernel_size, dilation, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
