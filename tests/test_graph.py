"""Tests for graph normalizations, builders, and polynomial supports."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, randn
from repro.graph import (
    chebyshev_supports,
    correlation_graph,
    diffusion_supports,
    distance_graph,
    graph_diameter,
    knn_graph,
    line_graph,
    normalize,
    random_walk,
    random_walk_np,
    ring_line_edges,
    row_softmax,
    sym_laplacian,
    sym_laplacian_np,
)


class TestNormalizations:
    def test_row_softmax_rows_sum_to_one(self, rng):
        adj = randn(3, 5, 5, rng=rng)
        out = row_softmax(adj)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_random_walk_rows_sum_to_one(self, rng):
        adj = Tensor(np.abs(rng.normal(size=(5, 5))) + 0.1)
        out = random_walk(adj)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-6)

    def test_sym_laplacian_symmetric_for_symmetric_input(self, rng):
        raw = np.abs(rng.normal(size=(5, 5)))
        adj = Tensor(raw + raw.T)
        out = sym_laplacian(adj)
        np.testing.assert_allclose(out.data, out.data.T, atol=1e-10)

    def test_sym_laplacian_spectrum_bounded(self, rng):
        raw = np.abs(rng.normal(size=(6, 6)))
        out = sym_laplacian(Tensor(raw + raw.T)).data
        eigenvalues = np.linalg.eigvalsh(out)
        assert eigenvalues.max() <= 1.0 + 1e-8

    def test_normalize_dispatch(self, rng):
        adj = randn(2, 4, 4, rng=rng)
        for mode in ("softmax", "sym", "random_walk"):
            out = normalize(adj, mode=mode)
            assert out.shape == adj.shape
        with pytest.raises(ValueError):
            normalize(adj, mode="nope")

    def test_normalizations_differentiable(self, rng):
        adj = randn(1, 4, 4, rng=rng, requires_grad=True)
        check_gradients(lambda: normalize(adj, "softmax").sum() * 0.1, [adj], rtol=1e-3)

    def test_numpy_variants_match_tensor_variants(self, rng):
        raw = np.abs(rng.normal(size=(5, 5)))
        np.testing.assert_allclose(
            sym_laplacian_np(raw), sym_laplacian(Tensor(raw)).data, atol=1e-9
        )
        np.testing.assert_allclose(
            random_walk_np(raw), random_walk(Tensor(raw)).data, atol=1e-9
        )


class TestBuilders:
    def test_distance_graph_properties(self, rng):
        coords = rng.normal(size=(10, 2))
        adj = distance_graph(coords)
        assert adj.shape == (10, 10)
        np.testing.assert_allclose(np.diag(adj), 0.0)
        np.testing.assert_allclose(adj, adj.T)
        assert (adj >= 0).all() and (adj <= 1).all()

    def test_distance_graph_threshold(self, rng):
        coords = rng.normal(size=(10, 2)) * 100
        adj = distance_graph(coords, sigma=1.0, threshold=0.5)
        assert (adj == 0).all()  # all pairs far away under tiny sigma

    def test_knn_graph_degree(self, rng):
        coords = rng.normal(size=(12, 2))
        adj = knn_graph(coords, k=3)
        assert (adj.sum(axis=1) >= 3).all()  # symmetrization can only add
        np.testing.assert_allclose(adj, adj.T)

    def test_correlation_graph(self, rng):
        base = rng.normal(size=200)
        series = np.stack([base, base + 0.01 * rng.normal(size=200), rng.normal(size=200)], axis=1)
        adj = correlation_graph(series, threshold=0.5)
        assert adj[0, 1] > 0.9
        assert adj[0, 2] == 0.0

    def test_line_graph(self):
        adj = line_graph([(0, 1), (1, 2)], num_nodes=4)
        assert adj[0, 1] == adj[1, 0] == 1.0
        assert adj[3].sum() == 0.0

    def test_ring_line_edges_connected(self):
        edges = ring_line_edges(12, num_lines=3, rng=np.random.default_rng(0))
        adj = line_graph(edges, 12)
        assert graph_diameter(adj) > 0  # -1 would mean disconnected


class TestSupports:
    def test_diffusion_supports_count_and_stochasticity(self, rng):
        adj = np.abs(rng.normal(size=(6, 6)))
        supports = diffusion_supports(adj, max_step=2)
        assert len(supports) == 4
        for s in supports:
            np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-6)

    def test_chebyshev_supports(self, rng):
        adj = randn(4, 4, rng=rng)
        supports = chebyshev_supports(adj, order=3)
        assert len(supports) == 3
        np.testing.assert_allclose(supports[0].data, np.eye(4))
        np.testing.assert_allclose(supports[1].data, adj.data)
        expected = 2 * adj.data @ adj.data - np.eye(4)
        np.testing.assert_allclose(supports[2].data, expected, atol=1e-10)

    def test_chebyshev_batched(self, rng):
        adj = randn(2, 4, 4, rng=rng)
        supports = chebyshev_supports(adj, order=2)
        assert supports[0].shape == (2, 4, 4)
