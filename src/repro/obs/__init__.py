"""Observability: tracing, spans, metrics, SLOs, run logging, monitors.

Six pillars (see docs/observability.md):

* :mod:`~repro.obs.trace` — ``with trace() as tr:`` op profiler over the
  autodiff engine (hot-op table, Chrome-trace export, strict no-op when
  inactive).
* :mod:`~repro.obs.spans` — causal span tracer: one tree per serving
  request / training step, contextvars propagation plus explicit
  context capture across thread handoffs, JSONL + Chrome-trace merge.
* :mod:`~repro.obs.slo` — declarative latency/error objectives with
  multi-window burn-rate alerts on an injectable clock; structured
  ``slo_burn`` records.
* :mod:`~repro.obs.metrics` — counters/gauges/histograms/timers with
  JSONL emission; one schema for trainer, benches, and CLI.
* :mod:`~repro.obs.runlog` — structured per-epoch run logger replacing
  the trainer's bare ``print`` (JSONL file + compatible console line),
  span-correlated when a span is active.
* :mod:`~repro.obs.graphwatch` — TagSL monitors: adjacency
  entropy/sparsity, trend-factor magnitude, saturation-gate activation,
  embedding-table drift (§IV-E, live).

Post-hoc analysis of the span stream (tree assembly, per-stage latency
percentiles, critical paths, the perf-regression sentinel) lives in
:mod:`repro.obs.report`, surfaced as ``repro.cli obs-report``.
"""

from .graphwatch import (
    GraphWatch,
    adjacency_entropy,
    adjacency_sparsity,
    embedding_drift,
    gate_activation_rate,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, read_jsonl
from .runlog import Console, RunLogger
from .slo import SLOMonitor, SLOStatus, SLObjective, default_serving_objectives
from .spans import (
    Span,
    SpanCollector,
    collect_spans,
    current_span,
    finish_span,
    is_collecting,
    span,
    start_span,
    use_span,
)
from .trace import OpStats, Tracer, is_tracing, record_replay, trace

__all__ = [
    "Console",
    "Counter",
    "Gauge",
    "GraphWatch",
    "Histogram",
    "MetricsRegistry",
    "OpStats",
    "RunLogger",
    "SLOMonitor",
    "SLOStatus",
    "SLObjective",
    "Span",
    "SpanCollector",
    "Tracer",
    "adjacency_entropy",
    "adjacency_sparsity",
    "collect_spans",
    "current_span",
    "default_serving_objectives",
    "embedding_drift",
    "finish_span",
    "gate_activation_rate",
    "is_collecting",
    "is_tracing",
    "read_jsonl",
    "record_replay",
    "span",
    "start_span",
    "trace",
    "use_span",
]
