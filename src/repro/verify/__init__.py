"""Verification subsystem: reference implementations, gradient oracle,
determinism harness.

Three pillars keep the reproduction honest as the stack gets optimized:

* :mod:`~repro.verify.reference` + :mod:`~repro.verify.crosscheck` — naive
  loop-based renditions of the paper's equations, diffed elementwise
  against the production ``repro.core`` / ``repro.graph`` paths;
* :mod:`~repro.verify.oracle` — :func:`check_module_gradients`, a
  module-walking finite-difference checker with a sampled-coordinate mode
  for full-model checks inside tier-1 budgets;
* :mod:`~repro.verify.determinism` — parameter-state hashing, named RNG
  streams, and golden loss-curve traces for trainer/optimizer regressions.

Runnable outside pytest via ``python -m repro.cli verify``.
"""

from .crosscheck import (
    ALL_CHECKS,
    CheckResult,
    check_chebyshev,
    check_discrepancy_loss,
    check_gcgru,
    check_node_adaptive_conv,
    check_tagsl,
    run_all,
)
from .determinism import (
    GoldenTrace,
    compare_traces,
    load_trace,
    named_rng,
    run_golden_trace,
    save_trace,
    state_hash,
)
from .oracle import GradientCheckReport, ParameterCheck, check_module_gradients
from . import reference

__all__ = [
    "ALL_CHECKS",
    "CheckResult",
    "GoldenTrace",
    "GradientCheckReport",
    "ParameterCheck",
    "check_chebyshev",
    "check_discrepancy_loss",
    "check_gcgru",
    "check_module_gradients",
    "check_node_adaptive_conv",
    "check_tagsl",
    "compare_traces",
    "load_trace",
    "named_rng",
    "reference",
    "run_all",
    "run_golden_trace",
    "save_trace",
    "state_hash",
]
