"""Tests for the mechanical autofixers behind ``repro.cli analyze --fix``.

Each fixable rule gets a before/after pair: the fixed source must parse,
must no longer trip the originating lint rule, and a second ``--fix``
run must be a no-op (idempotence).  Allow comments and whitelists keep
their veto over the fixer exactly as they do over the rule.
"""

import ast

from repro.analyze import FIXABLE_RULES, apply_fixes, lint_paths


def _fix(tmp_path, source, name="victim.py", **kwargs):
    path = tmp_path / name
    path.write_text(source)
    results = apply_fixes([path], **kwargs)
    return path, results


def _rule_ids(findings):
    return {f.rule_id for f in findings}


RL003_RAW = """\
from pathlib import Path


def save(payload):
    target = Path("out.json")
    target.write_text(payload)
"""

RL006_SILENT = """\
def load(path):
    try:
        return open(path).read()
    except OSError:
        pass
    return None
"""


class TestRL003Fix:
    def test_rewrites_to_atomic_write(self, tmp_path):
        path, results = _fix(tmp_path, RL003_RAW)
        fixed = path.read_text()
        assert "atomic_write_text(target, payload)" in fixed
        assert "from repro.ioutil import atomic_write_text" in fixed
        assert ".write_text(" not in fixed
        assert results and results[0]["fixes"] == {"RL003": 1}
        ast.parse(fixed)  # still valid python
        assert "RL003" not in _rule_ids(lint_paths([path], rules=["RL003"]))

    def test_idempotent(self, tmp_path):
        path, _ = _fix(tmp_path, RL003_RAW)
        once = path.read_text()
        assert apply_fixes([path]) == []
        assert path.read_text() == once

    def test_keyword_call_left_for_a_human(self, tmp_path):
        source = RL003_RAW.replace(
            "target.write_text(payload)",
            "target.write_text(payload, encoding='utf-8')",
        )
        path, results = _fix(tmp_path, source)
        assert results == []
        assert path.read_text() == source

    def test_allow_comment_blocks_the_fix(self, tmp_path):
        source = RL003_RAW.replace(
            "    target.write_text(payload)",
            "    # analyze: allow[RL003] scratch file, atomicity not needed\n"
            "    target.write_text(payload)",
        )
        path, results = _fix(tmp_path, source)
        assert results == []
        assert path.read_text() == source

    def test_dry_run_reports_without_writing(self, tmp_path):
        path, results = _fix(tmp_path, RL003_RAW, dry_run=True)
        assert results and results[0]["fixes"] == {"RL003": 1}
        assert path.read_text() == RL003_RAW


class TestRL006Fix:
    def test_gives_silent_handler_a_logged_body(self, tmp_path):
        path, results = _fix(tmp_path, RL006_SILENT)
        fixed = path.read_text()
        assert "except OSError as exc:" in fixed
        assert 'logging.getLogger(__name__).warning("suppressed %r", exc)' in fixed
        assert "import logging" in fixed
        assert results and results[0]["fixes"] == {"RL006": 1}
        ast.parse(fixed)
        assert "RL006" not in _rule_ids(lint_paths([path], rules=["RL006"]))

    def test_keeps_existing_exception_name(self, tmp_path):
        source = RL006_SILENT.replace("except OSError:", "except OSError as err:")
        path, _ = _fix(tmp_path, source)
        fixed = path.read_text()
        assert "except OSError as err:" in fixed
        assert '"suppressed %r", err)' in fixed

    def test_idempotent(self, tmp_path):
        path, _ = _fix(tmp_path, RL006_SILENT)
        once = path.read_text()
        assert apply_fixes([path]) == []
        assert path.read_text() == once

    def test_bare_except_is_not_touched(self, tmp_path):
        source = RL006_SILENT.replace("except OSError:", "except:")
        path, results = _fix(tmp_path, source)
        assert results == []  # RL005's business, not a mechanical fix
        assert path.read_text() == source

    def test_handler_that_does_something_is_not_touched(self, tmp_path):
        source = RL006_SILENT.replace("        pass", "        return ''")
        path, results = _fix(tmp_path, source)
        assert results == []
        assert path.read_text() == source

    def test_allow_comment_blocks_the_fix(self, tmp_path):
        source = RL006_SILENT.replace(
            "    except OSError:",
            "    # analyze: allow[RL006] probe failure is expected on cold start\n"
            "    except OSError:",
        )
        path, results = _fix(tmp_path, source)
        assert results == []
        assert path.read_text() == source


class TestApplyFixes:
    def test_fixable_rules_catalog(self):
        assert FIXABLE_RULES == ("RL003", "RL006")

    def test_rules_filter(self, tmp_path):
        path, results = _fix(tmp_path, RL003_RAW + "\n" + RL006_SILENT,
                             rules=["RL006"])
        assert results[0]["fixes"] == {"RL006": 1}
        assert ".write_text(" in path.read_text()  # RL003 untouched

    def test_both_rules_in_one_file(self, tmp_path):
        path, results = _fix(tmp_path, RL003_RAW + "\n" + RL006_SILENT)
        assert results[0]["fixes"] == {"RL003": 1, "RL006": 1}
        ast.parse(path.read_text())

    def test_syntax_error_file_is_skipped(self, tmp_path):
        path, results = _fix(tmp_path, "def broken(:\n")
        assert results == []
