"""SLO burn-rate alerting: window edges, fast/slow burn, recovery, wiring.

Everything runs on an injected clock with explicit ``now`` overrides, so
the multi-window conjunction (long window = evidence, short window =
still happening) is exercised at exact boundaries.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    BurnAlert,
    SLObjective,
    SLOMonitor,
    default_serving_objectives,
)


class RecordingLogger:
    """Captures ``log(event, **fields)`` calls like a RunLogger would."""

    def __init__(self):
        self.records = []

    def log(self, event, **fields):
        self.records.append({"event": event, **fields})


def _objective(**overrides):
    """A small availability objective with round windows for the tests."""
    kwargs = dict(
        name="avail", target=0.9,  # budget 0.1
        fast=BurnAlert("fast_burn", long_window=100.0, short_window=10.0,
                       threshold=5.0),
        slow=BurnAlert("slow_burn", long_window=1000.0, short_window=100.0,
                       threshold=2.0),
        min_events=4,
    )
    kwargs.update(overrides)
    return SLObjective(**kwargs)


class TestObjective:
    def test_target_must_be_a_proper_fraction(self):
        with pytest.raises(ValueError):
            SLObjective("bad", target=1.0)
        with pytest.raises(ValueError):
            SLObjective("bad", target=0.0)

    def test_is_bad_combines_failure_and_latency(self):
        latency = SLObjective("lat", target=0.95, latency_ms=250.0)
        assert latency.is_bad(latency_ms=300.0, failure=False)
        assert not latency.is_bad(latency_ms=100.0, failure=False)
        assert latency.is_bad(latency_ms=100.0, failure=True)
        availability = SLObjective("avail", target=0.99)
        assert not availability.is_bad(latency_ms=9999.0, failure=False)

    def test_default_serving_pair(self):
        lat, avail = default_serving_objectives()
        assert lat.latency_ms == 250.0 and avail.latency_ms is None
        assert lat.fast.threshold > lat.slow.threshold
        assert lat.fast.long_window < lat.slow.long_window

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SLOMonitor([_objective(), _objective()])


class TestBurnRateWindows:
    def test_event_exactly_on_the_window_edge_is_excluded(self):
        obj = _objective()
        monitor = SLOMonitor([obj])
        monitor.observe(0.0, failure=True, now=100.0)
        # Window (now-10, now]: an event at exactly now-10 does not count.
        assert monitor.burn_rate(obj, window=10.0, now=110.0) == 0.0
        # One tick inside the edge it does: 100% bad / 0.1 budget = 10.
        assert monitor.burn_rate(obj, window=10.0, now=109.9) \
            == pytest.approx(10.0)

    def test_empty_window_burns_nothing(self):
        obj = _objective()
        monitor = SLOMonitor([obj])
        assert monitor.burn_rate(obj, window=10.0, now=0.0) == 0.0

    def test_burn_is_error_ratio_over_budget(self):
        obj = _objective()  # budget 0.1
        monitor = SLOMonitor([obj])
        for i in range(10):
            monitor.observe(0.0, failure=(i < 3), now=float(i))
        # 3/10 bad over a window covering everything: 0.3 / 0.1 = 3.
        assert monitor.burn_rate(obj, window=50.0, now=9.0) \
            == pytest.approx(3.0)

    def test_events_past_the_longest_window_are_pruned(self):
        obj = _objective()
        monitor = SLOMonitor([obj])
        monitor.observe(0.0, failure=True, now=0.0)
        monitor.observe(0.0, failure=False, now=2000.0)  # prunes ts=0
        assert len(monitor._events["avail"]) == 1


class TestAlerting:
    def test_fast_burn_needs_both_windows_hot(self):
        obj = _objective()
        monitor = SLOMonitor([obj])
        # Cliff: 5 failures just now — long and short window both at
        # burn 10 ≥ 5 → fast_burn fires (slow_burn too: 10 ≥ 2).
        for i in range(5):
            monitor.observe(0.0, failure=True, now=100.0 + i)
        (status,) = monitor.evaluate(now=104.0)
        assert "fast_burn" in status.firing
        assert not status.ok and not monitor.ok(now=104.0)

    def test_old_failures_alone_do_not_page(self):
        obj = _objective()
        monitor = SLOMonitor([obj])
        # Same 5 failures, but the short window (10 s) has since drained:
        # evidence without "still happening" must not fire fast burn.
        for i in range(5):
            monitor.observe(0.0, failure=True, now=float(i))
        (status,) = monitor.evaluate(now=50.0)
        assert "fast_burn" not in status.firing
        # The slow alert's short window (100 s) still sees them.
        assert "slow_burn" in status.firing

    def test_min_events_guards_an_idle_service(self):
        obj = _objective(min_events=4)
        monitor = SLOMonitor([obj])
        monitor.observe(0.0, failure=True, now=100.0)  # 1 event, burn 10
        (status,) = monitor.evaluate(now=100.0)
        assert status.firing == [] and status.events == 1

    def test_latency_objective_counts_slow_answers_as_bad(self):
        obj = _objective(name="lat", latency_ms=250.0)
        monitor = SLOMonitor([obj])
        for i in range(5):
            monitor.observe(1000.0, failure=False, now=100.0 + i)
        (status,) = monitor.evaluate(now=104.0)
        assert status.bad == 5 and "fast_burn" in status.firing


class TestTransitions:
    def test_firing_then_recovery_emits_one_record_each(self):
        logger = RecordingLogger()
        metrics = MetricsRegistry()
        monitor = SLOMonitor([_objective()], logger=logger, metrics=metrics)
        for i in range(5):
            monitor.observe(0.0, failure=True, now=100.0 + i)
        monitor.evaluate(now=104.0)   # -> firing
        monitor.evaluate(now=104.5)   # still firing: no duplicate record
        # Good traffic dilutes, then the short window drains the failures.
        for i in range(40):
            monitor.observe(0.0, failure=False, now=120.0 + i)
        monitor.evaluate(now=160.0)   # -> recovered

        # One slo_burn record per transition, none for the steady state.
        burn = [r for r in logger.records if r["event"] == "slo_burn"]
        states = [(r["alert"], r["state"]) for r in burn]
        assert ("fast_burn", "firing") in states
        assert ("fast_burn", "recovered") in states
        assert len([s for s in states if s[0] == "fast_burn"]) == 2
        fired = metrics.counter("slo.avail.fast_burn_firing")
        recovered = metrics.counter("slo.avail.fast_burn_recovered")
        assert fired.value == 1 and recovered.value == 1

    def test_status_to_dict_is_json_ready(self):
        monitor = SLOMonitor([_objective()])
        (status,) = monitor.evaluate(now=0.0)
        payload = status.to_dict()
        assert payload["objective"] == "avail" and payload["ok"] is True
        assert set(payload["burn"]) == {"fast_burn", "slow_burn"}


class TestServerWiring:
    @pytest.fixture
    def gated_server(self, tiny_task):
        from repro.core import TGCRN
        from repro.serve import ForecastServer
        from repro.training import default_tgcrn_kwargs
        from repro.verify import named_rng

        class FakeClock:
            t = 1000.0

            def __call__(self):
                return self.t

        clock = FakeClock()
        model = TGCRN(
            **default_tgcrn_kwargs(
                tiny_task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
            rng=named_rng(3, "slo-server"),
        )
        server = ForecastServer(
            model, tiny_task, queue_depth=8, max_batch=4, clock=clock,
            slo_ready_gate=True,
        )
        return server, clock

    def test_health_reports_slo_and_fast_burn_flips_readiness(
            self, gated_server):
        server, clock = gated_server
        assert server.ready()
        health = server.health()
        assert health["status"] == "ok"
        assert {s["objective"] for s in health["slo"]} \
            == {"latency", "availability"}

        # A failure cliff through the monitor the server actually owns.
        for _ in range(10):
            server.slo.observe(0.0, failure=True, now=clock.t)
            clock.t += 1.0
        health = server.health()
        assert health["status"] == "degraded"
        assert not server.ready()  # fast burn + slo_ready_gate

    def test_slo_opt_out(self, gated_server, tiny_task):
        from repro.core import TGCRN
        from repro.serve import ForecastServer
        from repro.training import default_tgcrn_kwargs
        from repro.verify import named_rng

        model = TGCRN(
            **default_tgcrn_kwargs(
                tiny_task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
            rng=named_rng(3, "slo-off"),
        )
        server = ForecastServer(model, tiny_task, slo=False)
        assert server.slo is None
        assert server.health()["slo"] == []
