"""Thirteen comparison methods re-implemented on the autodiff substrate."""

from .agcrn import AGCRN
from .boosting import BoostingForecaster, GradientBoosting, RegressionTree, xgboost_model
from .ccrnn import CCRNN
from .dcrnn import DCRNN
from .esg import ESG
from .fclstm import FCLSTM
from .gts import GTS
from .gwnet import GraphWaveNet
from .historical import HistoricalAverage
from .mtgnn import MTGNN, MixHopPropagation
from .pvcgn import PVCGN
from .registry import ALL_BASELINES, NEURAL_BASELINES, STATISTICAL_BASELINES, build_baseline
from .transformers import Crossformer, Informer
from .cells import (
    DynamicGraphConv,
    DynamicGraphGRUCell,
    FixedGraphGRUCell,
    MultiGraphGRUCell,
    SupportGraphConv,
)

__all__ = [
    "AGCRN",
    "ALL_BASELINES",
    "BoostingForecaster",
    "CCRNN",
    "Crossformer",
    "DCRNN",
    "DynamicGraphConv",
    "DynamicGraphGRUCell",
    "ESG",
    "FCLSTM",
    "FixedGraphGRUCell",
    "GTS",
    "GradientBoosting",
    "GraphWaveNet",
    "HistoricalAverage",
    "Informer",
    "MTGNN",
    "MixHopPropagation",
    "MultiGraphGRUCell",
    "NEURAL_BASELINES",
    "PVCGN",
    "RegressionTree",
    "STATISTICAL_BASELINES",
    "SupportGraphConv",
    "build_baseline",
    "xgboost_model",
]
