"""Per-model circuit breaker: stop hammering a model that has gone bad.

A model that starts emitting NaN (diverged weights hot-swapped in, an
input regime that saturates the TagSL gate) fails *every* request — and
each failure still pays full inference cost before
``validate_output`` rejects it.  The breaker turns that into a cheap
fast-path: after ``failure_threshold`` consecutive failures it OPENs and
the server routes straight to the historical-average fallback for
``cooldown`` seconds, then HALF_OPENs to let a bounded number of probe
requests test whether the fault cleared, closing again only on probe
success.

The clock is injectable so tests drive the full state machine
deterministically without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerTransition:
    """One state change, recorded for observability."""

    ts: float
    old: str
    new: str
    reason: str


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown and half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (validation rejects, inference exceptions,
        timeouts) in CLOSED before tripping OPEN.
    cooldown:
        Seconds OPEN before probes are allowed (on ``clock``'s scale).
    half_open_probes:
        Probes admitted in HALF_OPEN before further traffic waits on
        their outcome; any probe failure re-OPENs immediately.
    clock:
        Monotonic time source; injectable for deterministic tests.
    on_transition:
        ``callback(transition: BreakerTransition)`` fired on every state
        change — the server wires this into metrics + the JSONL log.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
        on_transition=None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probes_in_flight = 0
        self.transitions: list[BreakerTransition] = []

    # -- queries -------------------------------------------------------- #

    def allow(self, now: float | None = None) -> bool:
        """May the next request hit the model?  (May HALF_OPEN the breaker.)

        OPEN + cooldown elapsed transitions to HALF_OPEN and admits a
        probe; OPEN within cooldown (and HALF_OPEN with all probe slots
        taken) answers False — serve the fallback instead.
        """
        now = self._now(now)
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.cooldown:
                self._transition(HALF_OPEN, "cooldown elapsed; probing", now)
                self._probes_in_flight = 1
                return True
            return False
        # HALF_OPEN: admit up to half_open_probes concurrent probes.
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    # -- outcome reports ------------------------------------------------ #

    def record_success(self, now: float | None = None) -> None:
        now = self._now(now)
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._transition(CLOSED, "probe succeeded", now)
        self.consecutive_failures = 0

    def record_failure(self, reason: str = "", now: float | None = None) -> None:
        now = self._now(now)
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip(f"probe failed: {reason}" if reason else "probe failed", now)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            detail = f"{self.consecutive_failures} consecutive failure(s)"
            if reason:
                detail += f"; last: {reason}"
            self._trip(detail, now)

    # -- internals ------------------------------------------------------ #

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def _trip(self, reason: str, now: float) -> None:
        self.opened_at = now
        self.consecutive_failures = 0
        self._probes_in_flight = 0
        self._transition(OPEN, reason, now)

    def _transition(self, new: str, reason: str, now: float) -> None:
        if new == self.state:
            return
        transition = BreakerTransition(ts=now, old=self.state, new=new, reason=reason)
        self.state = new
        self.transitions.append(transition)
        if self._on_transition is not None:
            self._on_transition(transition)
