"""Tests for the result-analysis helpers."""

import numpy as np
import pytest

from repro.metrics import MetricReport
from repro.training import (
    ExperimentResult,
    horizon_curve_text,
    improvement_over_best_baseline,
    improvement_table,
    paired_significance,
)


def _result(name, mae, rmse=None, mape=None, horizon_maes=None):
    report = MetricReport(mae=mae, mse=(rmse or mae) ** 2, rmse=rmse or mae,
                          mape=mape or mae, pcc=0.9)
    horizon = [
        MetricReport(mae=v, mse=v * v, rmse=v, mape=v, pcc=0.9)
        for v in (horizon_maes or [mae, mae])
    ]
    return ExperimentResult(
        model_name=name, dataset="d", overall=report, per_horizon=horizon,
        num_parameters=10, seconds_per_epoch=0.1, epochs_run=1,
    )


class TestImprovement:
    def test_positive_improvement(self):
        results = [_result("ha", 10.0), _result("agcrn", 5.0), _result("tgcrn", 4.0)]
        name, gain = improvement_over_best_baseline(results)
        assert name == "agcrn"
        assert gain == pytest.approx(20.0)

    def test_negative_when_losing(self):
        results = [_result("agcrn", 4.0), _result("tgcrn", 5.0)]
        _, gain = improvement_over_best_baseline(results)
        assert gain == pytest.approx(-25.0)

    def test_missing_target(self):
        with pytest.raises(ValueError):
            improvement_over_best_baseline([_result("ha", 1.0)])

    def test_no_baselines(self):
        with pytest.raises(ValueError):
            improvement_over_best_baseline([_result("tgcrn", 1.0)])

    def test_table_renders_all_metrics(self):
        results = [_result("ha", 10.0, rmse=20.0, mape=30.0), _result("tgcrn", 5.0, rmse=10.0, mape=15.0)]
        out = improvement_table(results)
        assert "MAE" in out and "RMSE" in out and "MAPE" in out
        assert out.count("50.00%") == 3


class TestSignificance:
    def test_clearly_better_model_is_significant(self, rng):
        target = rng.normal(size=(60, 3))
        good = target + rng.normal(scale=0.05, size=target.shape)
        bad = target + rng.normal(scale=1.0, size=target.shape)
        report = paired_significance(good, bad, target)
        assert report.significant
        assert report.median_delta < 0  # A's errors smaller

    def test_identical_models_not_significant(self, rng):
        target = rng.normal(size=(30, 3))
        pred = target + rng.normal(scale=0.5, size=target.shape)
        report = paired_significance(pred, pred.copy(), target)
        assert report.p_value == 1.0
        assert not report.significant

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_significance(np.zeros((2, 2)), np.zeros((3, 2)), np.zeros((2, 2)))


class TestHorizonCurve:
    def test_contains_all_models(self):
        results = [
            _result("fclstm", 5.0, horizon_maes=[4, 5, 6]),
            _result("tgcrn", 3.0, horizon_maes=[3, 3, 3]),
        ]
        out = horizon_curve_text(results)
        assert "fclstm" in out and "tgcrn" in out
        assert "[4.00 .. 6.00]" in out

    def test_constant_values_safe(self):
        results = [_result("m", 2.0, horizon_maes=[2, 2])]
        assert "m" in horizon_curve_text(results)
