"""Tests for the neural baselines: shape contracts, gradient flow, and a
one-batch learning check for each architecture."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mae_loss, randn
from repro.baselines import (
    AGCRN,
    CCRNN,
    DCRNN,
    ESG,
    FCLSTM,
    GTS,
    Crossformer,
    GraphWaveNet,
    Informer,
    PVCGN,
    NEURAL_BASELINES,
    build_baseline,
)
from repro.nn import Adam

_NODES, _IN, _OUT, _P, _Q = 5, 2, 2, 4, 3


def _build(name, rng):
    common = dict(in_dim=_IN, out_dim=_OUT, horizon=_Q)
    if name == "fclstm":
        return FCLSTM(_NODES, hidden_dim=8, num_layers=1, rng=rng, **common)
    if name == "informer":
        return Informer(_NODES, model_dim=8, num_heads=2, num_blocks=1, rng=rng, **common)
    if name == "crossformer":
        return Crossformer(_NODES, model_dim=8, num_heads=2, num_blocks=1, rng=rng, **common)
    if name == "dcrnn":
        adjacency = np.abs(rng.normal(size=(_NODES, _NODES)))
        return DCRNN(adjacency, hidden_dim=8, num_layers=1, rng=rng, **common)
    if name == "gwnet":
        return GraphWaveNet(_NODES, channels=8, num_blocks=2, rng=rng, **common)
    if name == "agcrn":
        return AGCRN(_NODES, hidden_dim=8, num_layers=1, embed_dim=4, rng=rng, **common)
    if name == "pvcgn":
        graphs = [np.abs(rng.normal(size=(_NODES, _NODES))) for _ in range(3)]
        return PVCGN(graphs, hidden_dim=8, num_layers=1, rng=rng, **common)
    if name == "ccrnn":
        return CCRNN(_NODES, hidden_dim=8, num_layers=2, embed_dim=4, rng=rng, **common)
    if name == "gts":
        features = rng.normal(size=(_NODES, 4))
        return GTS(features, hidden_dim=8, rng=rng, **common)
    if name == "esg":
        return ESG(_NODES, hidden_dim=8, embed_dim=4, rng=rng, **common)
    if name == "mtgnn":
        from repro.baselines import MTGNN

        return MTGNN(_NODES, channels=8, num_blocks=2, embed_dim=4, rng=rng, **common)
    raise AssertionError(name)


def _batch(rng, batch=3):
    x = randn(batch, _P, _NODES, _IN, rng=rng)
    t = np.arange(_P + _Q)[None, :].repeat(batch, axis=0)
    return x, t


@pytest.mark.parametrize("name", NEURAL_BASELINES)
class TestContracts:
    def test_output_shape(self, name, rng):
        model = _build(name, rng)
        x, t = _batch(rng)
        assert model(x, t).shape == (3, _Q, _NODES, _OUT)

    def test_gradients_reach_every_parameter(self, name, rng):
        model = _build(name, rng)
        model.train()
        x, t = _batch(rng)
        loss = mae_loss(model(x, t), Tensor(np.zeros((3, _Q, _NODES, _OUT))))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"{name}: no grad for {missing}"

    def test_one_batch_overfits(self, name, rng):
        model = _build(name, rng)
        model.train()
        x, t = _batch(rng)
        y = Tensor(rng.normal(scale=0.3, size=(3, _Q, _NODES, _OUT)))
        opt = Adam(model.parameters(), lr=5e-3)
        first = last = None
        for _ in range(20):
            opt.zero_grad()
            loss = mae_loss(model(x, t), y)
            loss.backward()
            opt.step()
            first = first or loss.item()
            last = loss.item()
        assert last < first, f"{name} did not reduce loss ({first:.4f} -> {last:.4f})"


class TestArchitectureSpecifics:
    def test_agcrn_adjacency_is_static_across_time(self, rng):
        model = _build("agcrn", rng)
        a1 = model.adaptive_adjacency(1).data
        a2 = model.adaptive_adjacency(1).data
        np.testing.assert_allclose(a1, a2)
        np.testing.assert_allclose(a1.sum(axis=-1), 1.0)

    def test_ccrnn_layers_use_distinct_graphs(self, rng):
        model = _build("ccrnn", rng)
        adjacencies = model.layer_adjacencies(1)
        assert len(adjacencies) == 2
        assert not np.allclose(adjacencies[0].data, adjacencies[1].data)

    def test_gts_eval_graph_is_deterministic_binary(self, rng):
        model = _build("gts", rng)
        model.eval()
        a1 = model.sample_adjacency(1).data
        a2 = model.sample_adjacency(1).data
        np.testing.assert_allclose(a1, a2)

    def test_gts_training_graph_is_stochastic(self, rng):
        model = _build("gts", rng)
        model.train()
        a1 = model.sample_adjacency(1).data.copy()
        a2 = model.sample_adjacency(1).data
        assert not np.allclose(a1, a2)

    def test_esg_adjacency_evolves_with_input(self, rng):
        """Different inputs must lead to different evolved embeddings."""
        model = _build("esg", rng)
        x1, t = _batch(rng, batch=1)
        x2 = Tensor(x1.data + 1.0)
        e0 = model.initial_embedding.unsqueeze(0).broadcast_to((1, _NODES, model.embed_dim))
        e1 = model._evolve(x1[:, 0], e0)
        e2 = model._evolve(x2[:, 0], e0)
        assert not np.allclose(e1.data, e2.data)

    def test_dcrnn_uses_graph(self, rng):
        """Zero vs dense adjacency must change the forecast."""
        dense = np.ones((_NODES, _NODES))
        sparse = np.eye(_NODES)
        m1 = DCRNN(dense, in_dim=_IN, out_dim=_OUT, horizon=_Q, hidden_dim=8, num_layers=1,
                   rng=np.random.default_rng(0))
        m2 = DCRNN(sparse, in_dim=_IN, out_dim=_OUT, horizon=_Q, hidden_dim=8, num_layers=1,
                   rng=np.random.default_rng(0))
        x, t = _batch(np.random.default_rng(5))
        assert not np.allclose(m1(x, t).data, m2(x, t).data)

    def test_gwnet_respects_channels(self, rng):
        model = _build("gwnet", rng)
        np.testing.assert_allclose(model.adaptive_adjacency().data.sum(axis=-1), 1.0)

    def test_mtgnn_adjacency_is_directed_and_sparse(self, rng):
        from repro.baselines import MTGNN

        model = MTGNN(6, _IN, _OUT, horizon=_Q, channels=8, top_k=2,
                      rng=np.random.default_rng(0))
        adjacency = model.learned_adjacency().data
        np.testing.assert_allclose(adjacency.sum(axis=-1), 1.0)
        active = (adjacency > 1e-6).sum(axis=-1)
        np.testing.assert_array_equal(active, 2)
        assert not np.allclose(adjacency, adjacency.T)  # directed

    def test_informer_positional_encoding_matters(self, rng):
        """Permuting the input sequence must change the output (thanks to
        the positional encoding, attention is not permutation-invariant)."""
        model = _build("informer", rng)
        x, t = _batch(rng, batch=1)
        out1 = model(x, t).data
        permuted = Tensor(x.data[:, ::-1].copy())
        out2 = model(permuted, t).data
        assert not np.allclose(out1, out2)


class TestRegistry:
    def test_unknown_name(self, tiny_task):
        with pytest.raises(ValueError):
            build_baseline("tcn9000", tiny_task)

    @pytest.mark.parametrize("name", ["dcrnn", "pvcgn", "gts"])
    def test_graph_dependent_baselines_build_from_task(self, name, tiny_task):
        model = build_baseline(name, tiny_task, hidden_dim=8, num_layers=1)
        x, y, t = next(iter(tiny_task.loader("val", 2)))
        out = model(Tensor(x), t)
        assert out.shape == y.shape
