"""Tests for the TGCRN extensions: lazy graph updates (the paper's
future-work feature) and scheduled sampling."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.core import TGCRN


def _model(rng, **overrides):
    kwargs = dict(
        num_nodes=4, in_dim=2, out_dim=2, horizon=3, hidden_dim=6,
        num_layers=1, node_dim=4, time_dim=4, steps_per_day=24,
    )
    kwargs.update(overrides)
    return TGCRN(**kwargs, rng=rng)


def _batch(rng, batch=2, history=4, horizon=3):
    x = randn(batch, history, 4, 2, rng=rng)
    t = np.arange(history + horizon)[None, :].repeat(batch, axis=0)
    return x, t


class TestGraphUpdateInterval:
    def test_interval_one_is_default_behavior(self, rng):
        seed = np.random.default_rng(0)
        m1 = _model(np.random.default_rng(1))
        m2 = _model(np.random.default_rng(1), graph_update_interval=1)
        m2.load_state_dict(m1.state_dict())
        x, t = _batch(seed)
        np.testing.assert_allclose(m1(x, t).data, m2(x, t).data, atol=1e-12)

    def test_large_interval_changes_output(self, rng):
        m1 = _model(np.random.default_rng(1))
        m2 = _model(np.random.default_rng(1), graph_update_interval=4)
        m2.load_state_dict(m1.state_dict())
        x, t = _batch(rng)
        assert not np.allclose(m1(x, t).data, m2(x, t).data)

    def test_interval_validated(self, rng):
        with pytest.raises(ValueError):
            _model(rng, graph_update_interval=0)

    def test_interval_model_still_trains(self, rng):
        from repro.autodiff import mae_loss
        from repro.nn import Adam

        model = _model(rng, graph_update_interval=2)
        x, t = _batch(rng)
        y = Tensor(np.zeros((2, 3, 4, 2)))
        opt = Adam(model.parameters(), lr=1e-2)
        first = last = None
        for _ in range(10):
            opt.zero_grad()
            loss = mae_loss(model(x, t), y)
            loss.backward()
            opt.step()
            first = first or loss.item()
            last = loss.item()
        assert last < first

    def test_interval_reduces_graph_builds(self, rng, monkeypatch):
        model = _model(rng, graph_update_interval=2)
        calls = {"n": 0}
        original = model.tagsl.normalized

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(model.tagsl, "normalized", counting)
        x, t = _batch(rng, history=4, horizon=3)
        model(x, t)
        # 1 layer: encoder builds at t=0,2 (2), decoder at q=0,2 (2) -> 4
        # instead of 7 with interval 1.
        assert calls["n"] == 4


class TestScheduledSampling:
    def test_probability_validated(self, rng):
        with pytest.raises(ValueError):
            _model(rng, scheduled_sampling=1.5)

    def test_eval_mode_ignores_targets(self, rng):
        model = _model(rng, scheduled_sampling=1.0)
        model.eval()
        x, t = _batch(rng)
        y = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4, 2)))
        out_with = model(x, t, targets=y).data
        out_without = model(x, t).data
        np.testing.assert_allclose(out_with, out_without, atol=1e-12)

    def test_training_mode_uses_targets(self, rng):
        model = _model(rng, scheduled_sampling=1.0)
        model.train()
        x, t = _batch(rng)
        y1 = Tensor(np.zeros((2, 3, 4, 2)))
        y2 = Tensor(np.full((2, 3, 4, 2), 5.0))
        out1 = model(x, t, targets=y1).data
        out2 = model(x, t, targets=y2).data
        # First frame is produced before any teacher forcing -> identical;
        # later frames must differ because the decoder consumed targets.
        np.testing.assert_allclose(out1[:, 0], out2[:, 0], atol=1e-12)
        assert not np.allclose(out1[:, 1:], out2[:, 1:])

    def test_trainer_passes_targets(self, tiny_task):
        from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs

        model = TGCRN(
            **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
            scheduled_sampling=0.5,
            rng=np.random.default_rng(0),
        )
        history = Trainer(TrainingConfig(epochs=1, batch_size=64)).fit(model, tiny_task)
        assert history.epochs_run == 1
