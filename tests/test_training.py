"""Tests for the Trainer, experiment runner, and table formatting."""

import numpy as np
import pytest

from repro.core import TGCRN
from repro.training import (
    ExperimentResult,
    Trainer,
    TrainingConfig,
    default_tgcrn_kwargs,
    format_ablation_table,
    format_cost_table,
    format_demand_table,
    format_electricity_table,
    format_metro_table,
    format_relative_series,
    run_experiment,
)


def _small_model(task, seed=0, **overrides):
    kwargs = default_tgcrn_kwargs(task, hidden_dim=8, node_dim=6, time_dim=4, num_layers=1)
    kwargs.update(overrides)
    return TGCRN(**kwargs, rng=np.random.default_rng(seed))


class TestTrainer:
    def test_fit_reduces_training_loss(self, tiny_task):
        model = _small_model(tiny_task)
        history = Trainer(TrainingConfig(epochs=3, batch_size=32)).fit(model, tiny_task)
        assert history.train_losses[-1] < history.train_losses[0]
        assert history.epochs_run == 3
        assert len(history.epoch_seconds) == 3

    def test_early_stopping_fires(self, tiny_task):
        model = _small_model(tiny_task)
        config = TrainingConfig(epochs=50, patience=1, lr=0.0, batch_size=64)
        history = Trainer(config).fit(model, tiny_task)
        assert history.stopped_early
        assert history.epochs_run < 50

    def test_best_weights_restored(self, tiny_task):
        """After fit, validation MAE must equal the recorded best."""
        model = _small_model(tiny_task)
        trainer = Trainer(TrainingConfig(epochs=3, batch_size=32))
        history = trainer.fit(model, tiny_task)
        assert trainer.validate(model, tiny_task) == pytest.approx(history.best_val_mae, rel=1e-6)

    def test_tdl_only_for_discrete_embedding(self, tiny_task):
        trainer = Trainer(TrainingConfig())
        rng = np.random.default_rng(0)
        discrete = _small_model(tiny_task)
        t2v = _small_model(tiny_task, time_encoder_kind="time2vec")
        assert trainer._make_discrepancy(discrete, tiny_task, rng, None) is not None
        assert trainer._make_discrepancy(t2v, tiny_task, rng, None) is None
        assert trainer._make_discrepancy(discrete, tiny_task, rng, False) is None

    def test_predict_returns_original_units(self, tiny_task):
        model = _small_model(tiny_task)
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=64))
        trainer.fit(model, tiny_task)
        pred, target = trainer.predict(model, tiny_task, "test")
        raw = tiny_task.inverse_targets(tiny_task.test.targets)
        np.testing.assert_allclose(target, raw, atol=1e-9)
        assert pred.shape == target.shape

    def test_lambda_time_changes_optimization(self, tiny_task):
        """λ > 0 must alter the learned time table versus λ = 0."""
        cfg_on = TrainingConfig(epochs=1, batch_size=64, lambda_time=0.5, seed=0)
        cfg_off = TrainingConfig(epochs=1, batch_size=64, lambda_time=0.0, seed=0)
        m_on = _small_model(tiny_task, seed=0)
        m_off = _small_model(tiny_task, seed=0)
        Trainer(cfg_on).fit(m_on, tiny_task)
        Trainer(cfg_off).fit(m_off, tiny_task)
        assert not np.allclose(m_on.time_encoder.weight.data, m_off.time_encoder.weight.data)


class TestRunExperiment:
    def test_statistical_model(self, tiny_task):
        result = run_experiment("ha", tiny_task)
        assert result.num_parameters == 0
        assert len(result.per_horizon) == tiny_task.horizon

    def test_neural_baseline(self, tiny_task):
        cfg = TrainingConfig(epochs=1, batch_size=64)
        result = run_experiment("fclstm", tiny_task, cfg, hidden_dim=8, num_layers=1)
        assert result.num_parameters > 0
        assert result.seconds_per_epoch > 0
        assert result.epochs_run == 1

    def test_tgcrn_variant(self, tiny_task):
        cfg = TrainingConfig(epochs=1, batch_size=64)
        result = run_experiment(
            "wo_pdf", tiny_task, cfg, hidden_dim=8,
            model_kwargs=dict(node_dim=4, time_dim=4, num_layers=1),
        )
        assert result.model_name == "wo_pdf"

    def test_unknown_model(self, tiny_task):
        with pytest.raises(ValueError):
            run_experiment("hypergraphormer", tiny_task)

    def test_keep_model(self, tiny_task):
        result = run_experiment("ha", tiny_task, keep_model=True)
        assert result.model is not None

    def test_horizon_metric_accessor(self, tiny_task):
        result = run_experiment("ha", tiny_task)
        maes = result.horizon_metric("mae")
        assert len(maes) == tiny_task.horizon
        assert all(m >= 0 for m in maes)


class TestTables:
    def _result(self, name="m", horizons=2):
        from repro.metrics import MetricReport

        report = MetricReport(mae=1.0, mse=4.0, rmse=2.0, mape=10.0, pcc=0.9)
        return ExperimentResult(
            model_name=name, dataset="d", overall=report,
            per_horizon=[report] * horizons, num_parameters=123,
            seconds_per_epoch=0.5, epochs_run=3,
        )

    def test_metro_table(self):
        out = format_metro_table([self._result("tgcrn")], interval_minutes=15)
        assert "tgcrn" in out and "15 min" in out and "30 min" in out

    def test_metro_table_empty(self):
        assert format_metro_table([]) == "(no results)"

    def test_demand_table(self):
        out = format_demand_table([self._result()])
        assert "PCC" in out and "0.9" in out

    def test_electricity_table(self):
        out = format_electricity_table([self._result()])
        assert "MSE" in out and "4.0" in out

    def test_ablation_table(self):
        out = format_ablation_table([self._result("wo_tdl")])
        assert "wo_tdl" in out

    def test_cost_table(self):
        out = format_cost_table([("TGCRN (64,32)", 16675299, 10.14)])
        assert "16,675,299" in out

    def test_relative_series(self):
        line = format_relative_series("tgcrn", [1.0, 2.0], [2.0, 2.0])
        assert "0.500" in line and "1.000" in line
