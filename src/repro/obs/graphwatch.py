"""TagSL graph-drift monitors — a live counterpart to the paper's §IV-E.

The analysis sections of the paper inspect the *learned* time-aware
adjacencies offline (heat maps, t-SNE of the time table).  During
training the same quantities are cheap to compute per epoch and catch
structure-learning pathologies early:

* **adjacency entropy** — mean per-row Shannon entropy of Â^t; collapse
  towards 0 means every node attends to one neighbour, ``log N`` means
  the graph learned nothing (uniform rows).
* **adjacency sparsity** — fraction of near-zero edges after Norm(·).
* **trend-factor magnitude** — mean |η_t| (Eq. 7/8): how strongly the
  time representation's evolution modulates the graph.
* **saturation-gate activation** — fraction of periodic-discriminant
  gates σ(A_p) past 0.5 (Eq. 9), plus the mean gate value.
* **embedding drift** — relative Frobenius drift of the time-embedding
  table and node embeddings since watch construction.

All heavy lifting is pure numpy on detached values; a snapshot never
touches the autodiff graph.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad

_EPS = 1e-12


# ---------------------------------------------------------------------- #
# stateless helpers (unit-testable on hand-computed matrices)
# ---------------------------------------------------------------------- #


def adjacency_entropy(adjacency: np.ndarray) -> float:
    """Mean per-row Shannon entropy (nats) of an adjacency batch.

    Rows are renormalized from their absolute values, so the measure is
    exact for softmax-normalized graphs and still meaningful for raw A^t.
    """
    a = np.abs(np.asarray(adjacency, dtype=float))
    rows = a / (a.sum(axis=-1, keepdims=True) + _EPS)
    ent = -(rows * np.log(rows + _EPS)).sum(axis=-1)
    return float(ent.mean())


def adjacency_sparsity(adjacency: np.ndarray, threshold: float = 1e-3) -> float:
    """Fraction of entries with ``|a| <= threshold``."""
    a = np.abs(np.asarray(adjacency, dtype=float))
    return float((a <= threshold).mean())


def gate_activation_rate(periodic_discriminant: np.ndarray, midpoint: float = 0.5) -> float:
    """Fraction of saturation gates σ(A_p) above ``midpoint`` (Eq. 9)."""
    gate = 1.0 / (1.0 + np.exp(-np.asarray(periodic_discriminant, dtype=float)))
    return float((gate > midpoint).mean())


def embedding_drift(current: np.ndarray, initial: np.ndarray) -> float:
    """Relative Frobenius drift ``||W - W0|| / ||W0||``."""
    current = np.asarray(current, dtype=float)
    initial = np.asarray(initial, dtype=float)
    return float(np.linalg.norm(current - initial) / (np.linalg.norm(initial) + _EPS))


# ---------------------------------------------------------------------- #
# stateful watcher
# ---------------------------------------------------------------------- #


class GraphWatch:
    """Per-epoch monitor of a TagSL-carrying model (TGCRN or bare TagSL).

    The trainer calls :meth:`observe_batch` with the first batch of every
    epoch (raw inputs — exactly what the first encoder layer feeds TagSL)
    and :meth:`snapshot` after the epoch; models without a TagSL module
    (baselines) yield ``available == False`` and empty snapshots.
    """

    def __init__(self, model, max_sample: int = 4, sparsity_threshold: float = 1e-3):
        from ..core.tagsl import TagSL  # local import: obs must not cycle with core

        self.tagsl = model if isinstance(model, TagSL) else getattr(model, "tagsl", None)
        self.norm = getattr(model, "norm", "softmax")
        self.sparsity_threshold = sparsity_threshold
        self.max_sample = max_sample
        self._sample_state: np.ndarray | None = None
        self._sample_times: np.ndarray | None = None
        self._initial_time_table: np.ndarray | None = None
        self._initial_node: np.ndarray | None = None
        if self.tagsl is not None:
            with no_grad():
                self._initial_time_table = self.tagsl.time_encoder.table().data.copy()
            self._initial_node = self.tagsl.node_embedding.data.copy()

    @property
    def available(self) -> bool:
        return self.tagsl is not None

    def observe_batch(self, x: np.ndarray, time_indices: np.ndarray) -> None:
        """Stash the first observed batch of the epoch as the probe input."""
        if not self.available or self._sample_state is not None:
            return
        x = np.asarray(x)
        t = np.asarray(time_indices)
        self._sample_state = np.array(x[: self.max_sample, 0], dtype=float)
        self._sample_times = np.atleast_1d(t[: self.max_sample, 0]).astype(np.int64)

    def snapshot(self) -> dict[str, float]:
        """Compute all monitors; resets the stashed batch for the next epoch."""
        if not self.available:
            return {}
        tagsl = self.tagsl
        state_np = self._sample_state
        times = self._sample_times
        self._sample_state = None
        self._sample_times = None
        if times is None:
            times = np.arange(min(self.max_sample, tagsl.time_encoder.num_slots), dtype=np.int64)
        if state_np is None:
            # zero node-state keeps the gate defined (σ(0) = 0.5) when the
            # watcher is used without observe_batch.
            state_np = np.zeros((len(times), tagsl.num_nodes, 1))
        stats: dict[str, float] = {}
        with no_grad():
            state = Tensor(state_np)
            adjacency = tagsl.normalized(state, times, mode=self.norm).data
            stats["adj_entropy"] = adjacency_entropy(adjacency)
            stats["adj_sparsity"] = adjacency_sparsity(adjacency, self.sparsity_threshold)
            if tagsl.use_trend:
                eta = tagsl.trend_factor(times).data
                stats["trend_eta_abs"] = float(np.abs(eta).mean())
            else:
                stats["trend_eta_abs"] = 0.0
            if tagsl.use_pdf:
                a_p = tagsl.periodic_discriminant(state).data
                stats["gate_rate"] = gate_activation_rate(a_p)
                stats["gate_mean"] = float(
                    (1.0 + tagsl.alpha / (1.0 + np.exp(-a_p))).mean()
                )
            else:
                stats["gate_rate"] = 0.0
                stats["gate_mean"] = 1.0
            time_table = tagsl.time_encoder.table().data
        stats["time_norm"] = float(np.linalg.norm(time_table))
        stats["time_drift"] = embedding_drift(time_table, self._initial_time_table)
        node = tagsl.node_embedding.data
        stats["node_norm"] = float(np.linalg.norm(node))
        stats["node_drift"] = embedding_drift(node, self._initial_node)
        return stats
