"""Reference-vs-production cross-checks (repro.verify.reference/crosscheck).

The acceptance bar: TagSL, the discrepancy loss, GCGRU, and Chebyshev
propagation must agree with the naive loop-based references at
rtol ≤ 1e-6.  A sensitivity test guards the guards: a deliberately
perturbed production parameter must make its cross-check fail.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, softmax
from repro.verify import ALL_CHECKS, run_all
from repro.verify import reference
from repro.verify.crosscheck import DEFAULT_RTOL, check_tagsl


class TestCrossChecks:
    @pytest.mark.parametrize("name", sorted(ALL_CHECKS))
    def test_production_matches_reference(self, name):
        result = ALL_CHECKS[name](seed=0)
        assert result.passed, str(result)
        assert result.rtol <= 1e-6

    def test_run_all_covers_every_check(self):
        results = run_all(seed=1)
        assert len(results) == len(ALL_CHECKS)
        assert all(r.passed for r in results), "\n".join(map(str, results))

    @pytest.mark.parametrize("seed", range(2, 5))
    def test_agreement_is_seed_independent(self, seed):
        assert all(r.passed for r in run_all(seed=seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(5, 25))
    def test_exhaustive_seed_sweep(self, seed):
        assert all(r.passed for r in run_all(seed=seed))


class TestSensitivity:
    """A wrong production path must be *caught*, not absorbed by tolerance."""

    def test_perturbed_tagsl_embedding_fails_check(self, monkeypatch):
        from repro.core.tagsl import TagSL

        original_forward = TagSL.forward

        def buggy_forward(self, node_state, time_indices):
            out = original_forward(self, node_state, time_indices)
            return out * 1.0001  # a 1e-4 relative error — sub-seed-variance

        monkeypatch.setattr(TagSL, "forward", buggy_forward)
        result = check_tagsl(seed=0)
        assert not result.passed

    def test_reference_detects_gate_order_swap(self):
        """Swapping z and r in the reference must disagree with production
        (guards against both paths sharing the same transposed bug)."""
        from repro.verify.crosscheck import check_gcgru

        swapped = reference.gcgru_cell_reference

        def gate_swapped(x, h, adjacency, node_embed, gw, gb, cw, cb, cheb_k):
            # reverse the gate pool halves: z reads r's channels and vice versa
            hidden = h.shape[-1]
            out_dim = 2 * hidden
            perm = np.concatenate([np.arange(hidden, out_dim), np.arange(hidden)])
            gw_swapped = gw.reshape(gw.shape[0], -1, out_dim)[..., perm].reshape(gw.shape)
            gb_swapped = gb[:, perm]
            return swapped(x, h, adjacency, node_embed, gw_swapped, gb_swapped, cw, cb, cheb_k)

        import repro.verify.crosscheck as crosscheck

        original = reference.gcgru_cell_reference
        reference.gcgru_cell_reference = gate_swapped
        try:
            result = crosscheck.check_gcgru(seed=0)
        finally:
            reference.gcgru_cell_reference = original
        assert not result.passed


class TestReferencePrimitives:
    """Direct checks of the naive implementations on hand-sized inputs."""

    def test_static_adjacency_is_gram_matrix(self, rng):
        emb = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            reference.static_adjacency_reference(emb), emb @ emb.T, rtol=1e-12
        )

    def test_trend_factor_wraps_at_day_boundary(self, rng):
        """η at slot 0 must pair with the *last* slot of the previous day."""
        table = rng.normal(size=(6, 4))
        eta = reference.trend_factor_reference(table, np.array([0]))
        assert eta[0] == pytest.approx(float(table[0] @ table[5]))

    def test_periodic_discriminant_is_symmetric_and_bounded(self, rng):
        state = rng.normal(size=(2, 5, 3))
        disc = reference.periodic_discriminant_reference(state)
        np.testing.assert_allclose(disc, disc.swapaxes(-1, -2), rtol=1e-12)
        assert np.all(np.abs(disc) <= 1.0)

    def test_row_softmax_matches_autodiff_softmax(self, rng):
        scores = rng.normal(size=(3, 4, 4)) * 5.0
        expected = softmax(Tensor(scores), axis=-1).data
        np.testing.assert_allclose(
            reference.row_softmax_reference(scores), expected, rtol=1e-12
        )

    def test_chebyshev_recurrence_order_three(self, rng):
        matrix = rng.normal(size=(4, 4))
        supports = reference.chebyshev_supports_reference(matrix, order=3)
        np.testing.assert_allclose(supports[0], np.eye(4), rtol=1e-12)
        np.testing.assert_allclose(supports[1], matrix, rtol=1e-12)
        np.testing.assert_allclose(
            supports[2], 2.0 * matrix @ matrix - np.eye(4), rtol=1e-9
        )

    def test_discrepancy_zero_for_identical_ratios(self):
        """A table where ζ/d is constant across the three pairs gives 0 loss."""
        # one-hot-free construction: embeddings spaced so distance == slot gap
        table = np.zeros((8, 1))
        table[:, 0] = np.arange(8, dtype=float)
        loss = reference.discrepancy_loss_reference(
            table,
            anchor_values=np.array([0]),
            adjacent_values=np.array([1]),
            mid_values=np.array([3]),
            distant_values=np.array([6]),
            l2_eps=0.0,
        )
        assert loss == pytest.approx(0.0, abs=1e-12)
