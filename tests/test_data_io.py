"""Tests for dataset persistence and CSV export."""

import csv

import numpy as np
import pytest

from repro.data import (
    SpatioTemporalGenerator,
    SyntheticConfig,
    export_csv,
    load_dataset,
    save_dataset,
)


@pytest.fixture
def dataset():
    return SpatioTemporalGenerator(
        SyntheticConfig(num_nodes=6, steps_per_day=12, num_days=4, seed=5)
    ).generate()


class TestNpzRoundtrip:
    def test_values_preserved(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        np.testing.assert_allclose(loaded.values, dataset.values)
        np.testing.assert_array_equal(loaded.time_index, dataset.time_index)
        np.testing.assert_array_equal(loaded.areas, dataset.areas)
        assert loaded.line_edges == dataset.line_edges

    def test_generator_rebuilt_for_od_access(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        np.testing.assert_allclose(loaded.od_matrix(7), dataset.od_matrix(7))

    def test_config_preserved(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        assert loaded.config == dataset.config

    def test_electricity_generator_class_restored(self, tmp_path):
        from repro.data import ElectricityGenerator

        ds = ElectricityGenerator(
            SyntheticConfig(num_nodes=4, steps_per_day=12, num_days=3)
        ).generate()
        save_dataset(tmp_path / "e.npz", ds)
        loaded = load_dataset(tmp_path / "e.npz")
        assert type(loaded.generator).__name__ == "ElectricityGenerator"
        np.testing.assert_allclose(loaded.values, ds.values)


class TestCsvExport:
    def test_row_count_and_header(self, tmp_path, dataset):
        path = tmp_path / "ds.csv"
        export_csv(path, dataset, feature_names=["inflow", "outflow"])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["step", "slot_of_day", "day_of_week", "node", "inflow", "outflow"]
        assert len(rows) == 1 + dataset.num_steps * dataset.num_nodes

    def test_values_match(self, tmp_path, dataset):
        path = tmp_path / "ds.csv"
        export_csv(path, dataset)
        with open(path) as handle:
            reader = csv.DictReader(handle)
            row = next(reader)
        assert float(row["feature_0"]) == pytest.approx(dataset.values[0, 0, 0], rel=1e-5)

    def test_wrong_feature_names(self, tmp_path, dataset):
        with pytest.raises(ValueError):
            export_csv(tmp_path / "ds.csv", dataset, feature_names=["only_one"])
