"""Training loop reproducing the paper's optimization protocol (§IV-A-4).

Adam (lr 1e-3, L2 penalty 1e-4), learning rate decayed by 0.3 at epochs
[5, 20, 40, 70, 90], batch size 16, early stopping on validation MAE with
patience 15, joint objective L = L_error + λ·L_time (Eq. 17) where the
time-discrepancy term only applies to models exposing a trainable
discrete time embedding.

Fault tolerance (docs/resilience.md): when ``checkpoint_path`` is set the
loop writes an atomic full-state checkpoint (model, best-so-far, Adam
moments, lr schedule, every RNG stream, history) every
``checkpoint_every`` epochs, and ``resume=True`` restarts a killed run
*bit-compatibly* — the resumed run finishes with the same ``state_hash``
and loss curve as an uninterrupted one.  A ``sentinel``
(:class:`~repro.resilience.DivergenceSentinel`) may abort the loop with
:class:`DivergenceDetected` on NaN/Inf losses or exploding gradients; a
``fault_hook`` is the seam the ``repro.resilience.chaos`` injectors use
to poison gradients or simulate crashes in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..autodiff import Tensor, huber_loss, mae_loss, mse_loss, no_grad
from ..core.discrepancy import TimeDiscrepancyLearner
from ..core.time_encoding import DiscreteTimeEmbedding
from ..data.datasets import ForecastingTask
from ..metrics.errors import MetricReport, NonFiniteMetricError, evaluate, horizon_report
from ..nn import Adam, Module, MultiStepLR, clip_grad_norm
from ..obs import GraphWatch, RunLogger
from ..obs.spans import finish_span, start_span, use_span


class DivergenceDetected(RuntimeError):
    """Training aborted by a divergence sentinel (recoverable).

    Raised out of :meth:`Trainer.fit` when the attached sentinel flags a
    NaN/Inf loss, an exploding pre-clip gradient norm, or a stalled
    validation curve.  :class:`~repro.resilience.GuardedTrainer` catches
    it and rolls back to the last good checkpoint with lr backoff.
    """

    def __init__(self, reason: str, epoch: int, batch: int | None = None, value=None):
        self.reason = reason
        self.epoch = epoch
        self.batch = batch
        self.value = None if value is None else float(value)
        where = f"epoch {epoch}" + (f", batch {batch}" if batch is not None else "")
        detail = f"divergence detected ({reason}) at {where}"
        if self.value is not None:
            detail += f": {self.value!r}"
        super().__init__(detail)


@dataclass
class TrainingConfig:
    """Hyper-parameters of the optimization protocol."""

    epochs: int = 30
    batch_size: int = 16
    lr: float = 1e-3
    weight_decay: float = 1e-4
    lr_milestones: tuple[int, ...] = (5, 20, 40, 70, 90)
    lr_gamma: float = 0.3
    patience: int = 15
    grad_clip: float = 5.0
    lambda_time: float = 0.1
    seed: int = 0
    verbose: bool = False
    # Structured run log (repro.obs.RunLogger): JSONL destination, or None.
    log_path: str | None = None
    # Error term of Eq. 17: "mae" (the paper), "mse", or "huber".
    loss: str = "mae"
    # Inverse-sigmoid decay constant for scheduled sampling (DCRNN's
    # curriculum): p(epoch) = k / (k + exp(epoch / k)).  None keeps the
    # model's fixed probability.
    scheduled_sampling_decay: float | None = None
    # Fault tolerance: full training-state checkpoint destination (.npz),
    # written atomically every `checkpoint_every` epochs.  `resume=True`
    # restarts from an existing checkpoint bit-compatibly.
    checkpoint_path: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    # Capture/replay execution engine (docs/engine.md): capture each step
    # signature once, then replay the recorded plan with precompiled
    # kernels.  Bitwise-identical to eager; falls back automatically on
    # guard violations (logged as ``plan_invalidated``).
    compile: bool = False

    def sampling_probability(self, epoch: int) -> float | None:
        """Teacher-forcing probability for ``epoch`` (None = unchanged)."""
        k = self.scheduled_sampling_decay
        if k is None:
            return None
        return k / (k + float(np.exp(epoch / k)))

    def error_loss(self, prediction: Tensor, target: Tensor) -> Tensor:
        """L_error of Eq. 17/18 under the configured criterion."""
        criteria = {"mae": mae_loss, "mse": mse_loss, "huber": huber_loss}
        try:
            return criteria[self.loss](prediction, target)
        except KeyError:
            raise ValueError(f"unknown loss {self.loss!r}; choose from {sorted(criteria)}") from None


@dataclass
class TrainingHistory:
    """Per-epoch records plus bookkeeping of the best epoch."""

    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    # Eq. 17 split: train_losses = error_losses + λ·time_losses.
    error_losses: list[float] = field(default_factory=list)
    time_losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)  # mean pre-clip L2
    best_epoch: int = -1
    best_val_mae: float = float("inf")
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)

    def as_dict(self) -> dict:
        """Plain-JSON form for training-state checkpoints."""
        return {
            "train_losses": list(self.train_losses),
            "val_maes": list(self.val_maes),
            "epoch_seconds": list(self.epoch_seconds),
            "error_losses": list(self.error_losses),
            "time_losses": list(self.time_losses),
            "lrs": list(self.lrs),
            "grad_norms": list(self.grad_norms),
            "best_epoch": self.best_epoch,
            "best_val_mae": self.best_val_mae,
            "stopped_early": self.stopped_early,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        return cls(**payload)


class Trainer:
    """Fit a forecaster on a :class:`ForecastingTask`.

    Any model whose ``forward(x, time_indices)`` maps a scaled
    (B, P, N, d) tensor plus (B, P+Q) absolute time indices to a scaled
    (B, Q, N, d_out) tensor can be trained.  If the model carries a
    :class:`DiscreteTimeEmbedding` time encoder and ``use_tdl`` is true,
    the Eq. 3 regularizer is added with weight ``lambda_time``.
    """

    def __init__(self, config: TrainingConfig | None = None):
        self.config = config or TrainingConfig()

    def fit(
        self,
        model: Module,
        task: ForecastingTask,
        use_tdl: bool | None = None,
        augmenter=None,
        logger: RunLogger | None = None,
        sentinel=None,
        fault_hook=None,
        resume: bool | None = None,
        lr_scale: float = 1.0,
        compile: bool | None = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``task``.

        ``augmenter`` is an optional callable (e.g.
        :class:`~repro.data.augmentation.WindowAugmenter`) applied to each
        training input batch; validation/test batches are never augmented.
        ``logger`` is an optional :class:`~repro.obs.RunLogger`; when
        omitted, one is built from the config (``log_path`` for the JSONL
        file, ``verbose`` for the console echo) and closed at exit.

        ``sentinel`` is an optional divergence monitor with
        ``on_batch(epoch, batch, loss, grad_norm)`` /
        ``on_epoch(epoch, train_loss, val_mae, best_val_mae)`` hooks that
        raise :class:`DivergenceDetected` to abort (the last good
        checkpoint is never overwritten by a flagged epoch).
        ``fault_hook`` is an optional callable ``(point, **context)``
        invoked at ``"after_backward"`` and ``"epoch_end"`` — the
        fault-injection seam used by ``repro.resilience.chaos``.
        ``resume`` overrides ``config.resume``; ``lr_scale`` multiplies
        the learning-rate schedule after any restore (divergence backoff).
        ``compile`` overrides ``config.compile``: route each training
        step through a :class:`~repro.autodiff.ExecutionEngine` that
        captures the op sequence once per batch signature and replays it
        with precompiled kernels — bitwise-identical losses and
        gradients, with automatic eager fallback on guard violations
        (see docs/engine.md).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        scheduler = MultiStepLR(optimizer, cfg.lr_milestones, gamma=cfg.lr_gamma)
        discrepancy = self._make_discrepancy(model, task, rng, use_tdl)
        loader = task.loader("train", cfg.batch_size, shuffle=True, seed=cfg.seed)
        history = TrainingHistory()
        best_state = model.state_dict()
        bad_epochs = 0
        start_epoch = 0

        ckpt_path = Path(cfg.checkpoint_path) if cfg.checkpoint_path else None
        do_resume = cfg.resume if resume is None else resume
        checkpoint = None
        if do_resume and ckpt_path is not None and ckpt_path.exists():
            from ..resilience.checkpoint import load_training_checkpoint

            checkpoint = load_training_checkpoint(ckpt_path)

        owns_logger = logger is None
        if logger is None:
            logger = RunLogger(
                path=cfg.log_path, console=cfg.verbose,
                mode="a" if checkpoint is not None else "w",
                metadata={"task": task.name, "model": type(model).__name__,
                          "epochs": cfg.epochs, "batch_size": cfg.batch_size,
                          "lr": cfg.lr, "lambda_time": cfg.lambda_time,
                          "seed": cfg.seed},
            )

        if checkpoint is not None:
            model.load_state_dict(checkpoint.model_state)
            best_state = dict(checkpoint.best_state)
            optimizer.load_state_dict(checkpoint.optimizer_state)
            scheduler.load_state_dict(checkpoint.scheduler_state)
            # The restored optimizer lr is authoritative (lr backoff may
            # have moved it off the schedule).
            optimizer.lr = checkpoint.optimizer_state["lr"]
            self._restore_rng_states(checkpoint.rng_states, model, rng, loader)
            history = TrainingHistory.from_dict(checkpoint.history)
            bad_epochs = checkpoint.bad_epochs
            start_epoch = checkpoint.epoch
            logger.log("resume", epoch=start_epoch, checkpoint=str(ckpt_path))
        if lr_scale != 1.0:
            scheduler.scale_lr(lr_scale)
            logger.log("lr_backoff", scale=lr_scale, lr=scheduler.current_lr)

        watch = GraphWatch(model)

        engine = None
        do_compile = cfg.compile if compile is None else compile
        if do_compile:
            from ..autodiff.engine import ExecutionEngine, discover_rngs

            roots = [model, rng] + ([discrepancy] if discrepancy is not None else [])
            engine = ExecutionEngine(
                f"train:{type(model).__name__}", logger=logger,
                rngs=discover_rngs(*roots))
        self.last_engine = engine

        def compiled_step(x_t, y_t, t):
            # Mirrors the eager block below op-for-op so capture records
            # exactly the arithmetic eager mode would run.
            if getattr(model, "scheduled_sampling", 0.0) > 0.0:
                prediction = model(x_t, t, targets=y_t)
            else:
                prediction = model(x_t, t)
            error = cfg.error_loss(prediction, y_t)
            loss = error
            time_loss = None
            if discrepancy is not None:
                time_loss = discrepancy(t)
                loss = error + cfg.lambda_time * time_loss
            loss.backward()
            return loss, error, time_loss

        # Causal spans (repro.obs.spans): one "fit" root with
        # epoch → step/validate/checkpoint children; strict no-ops unless
        # a SpanCollector is installed.  ``epoch_span`` is captured by the
        # checkpoint closure so a mid-epoch save nests correctly.
        fit_span = start_span("fit", attrs={
            "task": task.name, "model": type(model).__name__,
            "compile": bool(do_compile)})
        epoch_span = None

        def save_checkpoint(next_epoch: int) -> None:
            from ..resilience.checkpoint import TrainingCheckpoint, save_training_checkpoint

            ckpt_span = start_span(
                "checkpoint", parent=epoch_span if epoch_span is not None else fit_span,
                inherit=False, attrs={"epoch": next_epoch})
            save_training_checkpoint(ckpt_path, TrainingCheckpoint(
                epoch=next_epoch,
                model_state=model.state_dict(),
                best_state=best_state,
                optimizer_state=optimizer.state_dict(),
                scheduler_state=scheduler.state_dict(),
                rng_states=self._capture_rng_states(model, rng, loader),
                history=history.as_dict(),
                bad_epochs=bad_epochs,
                metadata={"task": task.name, "model": type(model).__name__,
                          "seed": cfg.seed},
            ))
            finish_span(ckpt_span)
            logger.log("checkpoint", epoch=next_epoch, path=str(ckpt_path))

        # A pristine epoch-0 checkpoint guarantees rollback always has a
        # target, even when divergence strikes in the very first epoch.
        if ckpt_path is not None and checkpoint is None:
            save_checkpoint(0)

        try:
            for epoch in range(start_epoch, cfg.epochs):
                epoch_span = start_span("epoch", parent=fit_span,
                                        inherit=False, attrs={"epoch": epoch})
                start = time.perf_counter()
                model.train()
                probability = cfg.sampling_probability(epoch)
                if probability is not None and hasattr(model, "scheduled_sampling"):
                    model.scheduled_sampling = probability
                epoch_loss = 0.0
                epoch_error = 0.0
                epoch_time_loss = 0.0
                epoch_grad_norm = 0.0
                batches = 0
                for x, y, t in loader:
                    if augmenter is not None:
                        x = augmenter(x)
                    watch.observe_batch(x, t)
                    optimizer.zero_grad()
                    step_span = start_span("step", parent=epoch_span,
                                           inherit=False,
                                           attrs={"epoch": epoch, "batch": batches})
                    # use_span makes the step the contextvar parent so the
                    # engine's capture/replay spans nest underneath it.
                    with use_span(step_span):
                        if engine is not None:
                            loss, error, time_loss = engine.run(
                                compiled_step, Tensor(x), Tensor(y), t,
                                key=(getattr(model, "scheduled_sampling", 0.0) > 0.0,))
                            if time_loss is not None:
                                epoch_time_loss += time_loss.item()
                        else:
                            if getattr(model, "scheduled_sampling", 0.0) > 0.0:
                                prediction = model(Tensor(x), t, targets=Tensor(y))
                            else:
                                prediction = model(Tensor(x), t)
                            error = cfg.error_loss(prediction, Tensor(y))
                            loss = error
                            if discrepancy is not None:
                                time_loss = discrepancy(t)
                                loss = error + cfg.lambda_time * time_loss
                                epoch_time_loss += time_loss.item()
                            loss.backward()
                    if fault_hook is not None:
                        fault_hook("after_backward", model=model, epoch=epoch, batch=batches)
                    grad_norm = clip_grad_norm(model.parameters(), cfg.grad_clip)
                    loss_value = loss.item()
                    finish_span(step_span, loss=loss_value, grad_norm=grad_norm)
                    if sentinel is not None:
                        # Checked before the step so flagged gradients
                        # never reach the parameters.
                        sentinel.on_batch(epoch, batches, loss_value, grad_norm)
                    optimizer.step()
                    epoch_grad_norm += grad_norm
                    epoch_loss += loss_value
                    epoch_error += error.item()
                    batches += 1
                lr = scheduler.current_lr
                scheduler.step()
                denominator = max(batches, 1)
                history.train_losses.append(epoch_loss / denominator)
                history.error_losses.append(epoch_error / denominator)
                history.time_losses.append(epoch_time_loss / denominator)
                history.lrs.append(lr)
                history.grad_norms.append(epoch_grad_norm / denominator)
                history.epoch_seconds.append(time.perf_counter() - start)

                val_span = start_span("validate", parent=epoch_span,
                                      inherit=False, attrs={"epoch": epoch})
                try:
                    val_mae = self.validate(model, task)
                except NonFiniteMetricError as exc:
                    finish_span(val_span, status="error")
                    if sentinel is not None:
                        raise DivergenceDetected("nonfinite_validation", epoch) from exc
                    raise
                finish_span(val_span, val_mae=val_mae)
                history.val_maes.append(val_mae)
                logger.log_epoch(
                    epoch,
                    train_loss=history.train_losses[-1],
                    l_error=history.error_losses[-1],
                    l_time=history.time_losses[-1],
                    val_mae=val_mae,
                    lr=lr,
                    grad_norm=history.grad_norms[-1],
                    epoch_seconds=history.epoch_seconds[-1],
                    graph=watch.snapshot(),
                )
                if sentinel is not None:
                    sentinel.on_epoch(epoch, history.train_losses[-1], val_mae,
                                      history.best_val_mae)
                if val_mae < history.best_val_mae - 1e-9:
                    history.best_val_mae = val_mae
                    history.best_epoch = epoch
                    best_state = model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= cfg.patience:
                        history.stopped_early = True
                if ckpt_path is not None and (
                    (epoch + 1) % cfg.checkpoint_every == 0
                    or epoch + 1 == cfg.epochs
                    or history.stopped_early
                ):
                    save_checkpoint(epoch + 1)
                if fault_hook is not None:
                    fault_hook("epoch_end", model=model, epoch=epoch)
                finish_span(epoch_span, train_loss=history.train_losses[-1],
                            val_mae=val_mae)
                if history.stopped_early:
                    break

            if engine is not None:
                logger.log("engine_summary", engine=engine.label,
                           **engine.stats)
            logger.log_summary(
                best_epoch=history.best_epoch,
                best_val_mae=history.best_val_mae,
                epochs_run=history.epochs_run,
                stopped_early=history.stopped_early,
            )
            finish_span(fit_span, epochs_run=history.epochs_run,
                        best_val_mae=history.best_val_mae)
        finally:
            # Idempotent: on the happy path the span is already closed; an
            # escaping exception (divergence, crash injection) closes it
            # here as an error while interrupted epoch/step spans flush as
            # "unfinished" when the collector shuts down.
            finish_span(fit_span, status="error")
            if owns_logger:
                logger.close()
        model.load_state_dict(best_state)
        return history

    @staticmethod
    def _capture_rng_states(model: Module, rng: np.random.Generator, loader) -> dict:
        """Bit-generator states of every stream the loop consumes."""
        states = {"trainer": rng.bit_generator.state, "loader": loader.rng_state}
        sampling_rng = getattr(model, "_sampling_rng", None)
        if sampling_rng is not None:
            states["model_sampling"] = sampling_rng.bit_generator.state
        return states

    @staticmethod
    def _restore_rng_states(states: dict, model: Module, rng: np.random.Generator, loader) -> None:
        rng.bit_generator.state = states["trainer"]
        loader.rng_state = states["loader"]
        sampling_rng = getattr(model, "_sampling_rng", None)
        if sampling_rng is not None and "model_sampling" in states:
            sampling_rng.bit_generator.state = states["model_sampling"]

    def validate(self, model: Module, task: ForecastingTask) -> float:
        """Validation MAE in original units (early-stopping criterion)."""
        prediction, target = self.predict(model, task, "val")
        return evaluate(prediction, target).mae

    def predict(
        self, model: Module, task: ForecastingTask, split: str, batch_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the model over a split; returns unscaled (pred, target)."""
        model.eval()
        loader = task.loader(split, batch_size or self.config.batch_size, shuffle=False)
        predictions, targets = [], []
        with no_grad():
            for x, y, t in loader:
                out = model(Tensor(x), t)
                predictions.append(out.numpy())
                targets.append(y)
        prediction = task.inverse_targets(np.concatenate(predictions))
        target = task.inverse_targets(np.concatenate(targets))
        return prediction, target

    def test_report(
        self, model: Module, task: ForecastingTask
    ) -> tuple[MetricReport, list[MetricReport]]:
        """Overall + per-horizon metrics on the test split."""
        prediction, target = self.predict(model, task, "test")
        return evaluate(prediction, target), horizon_report(prediction, target)

    def _make_discrepancy(
        self,
        model: Module,
        task: ForecastingTask,
        rng: np.random.Generator,
        use_tdl: bool | None,
    ) -> TimeDiscrepancyLearner | None:
        encoder = getattr(model, "time_encoder", None)
        if encoder is None or self.config.lambda_time <= 0:
            return None
        if use_tdl is None:
            use_tdl = isinstance(encoder, DiscreteTimeEmbedding)
        if not use_tdl:
            return None
        window = task.history + task.horizon
        return TimeDiscrepancyLearner(encoder, rng, adjacent_range=max(1, task.history // 2))
