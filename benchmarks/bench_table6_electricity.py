"""Table VI: MSE/MAE on the Electricity dataset.

Expected shape (paper): Informer and Graph WaveNet weakest, AGCRN/ESG/
Crossformer close, TGCRN best on both metrics.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_electricity_table, run_experiment

METHODS = ("gwnet", "agcrn", "informer", "crossformer", "esg", "tgcrn")


def _run() -> str:
    s = scale()
    task = load_task(
        "electricity", num_nodes=s.electricity_nodes, num_days=s.electricity_days, seed=0
    )
    config = TrainingConfig(epochs=max(3, s.epochs // 2), batch_size=16, seed=0)
    results = []
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        results.append(
            run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                           num_layers=s.num_layers, **kwargs)
        )
    return format_electricity_table(results)


def test_table6_electricity(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("table6_electricity", table)
