"""Extra ablations of design choices DESIGN.md §6 calls out (not in the
paper's tables, but implied by its design decisions):

1. Normalization of A^t (Eq. 11 says "e.g., the softmax function").
2. Scalar vs per-edge (vector) trend factor.
3. Saturation factor α of the periodic discriminant (paper fixes 0.3).
4. Chebyshev support depth K of the GCGRU convolution.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, run_experiment


def _row(task, config, s, label, **model_overrides):
    kwargs = dict(tgcrn_kwargs(s))
    kwargs.update(model_overrides)
    result = run_experiment("tgcrn", task, config, hidden_dim=s.hidden_dim, model_kwargs=kwargs)
    return (
        f"{label:<28} | {result.overall.mae:7.2f} {result.overall.rmse:8.2f} "
        f"{result.num_parameters:9,d}"
    )


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    lines = [f"{'configuration':<28} | {'MAE':>7} {'RMSE':>8} {'#params':>9}", "-" * 60]
    lines.append(_row(task, config, s, "baseline (softmax, scalar)"))
    lines.append(_row(task, config, s, "norm = sym-laplacian", norm="sym"))
    lines.append(_row(task, config, s, "norm = random-walk", norm="random_walk"))
    lines.append(_row(task, config, s, "trend = vector (per-edge)", trend_mode="vector"))
    for alpha in (0.0, 0.1, 0.6):
        lines.append(_row(task, config, s, f"alpha = {alpha}", alpha=alpha))
    lines.append(_row(task, config, s, "cheb_k = 1 (no graph hop)", cheb_k=1))
    lines.append(_row(task, config, s, "cheb_k = 3", cheb_k=3))
    half = max(2, s.metro_nodes // 2)
    lines.append(_row(task, config, s, f"top_k = {half} (sparse graph)", top_k=half))
    lines.append(_row(task, config, s, "graph_update_interval = 2", graph_update_interval=2))
    return "\n".join(lines)


def test_ablation_extras(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("ablation_extras", out)
