"""Serve-side fault injectors: prove the containment paths actually fire.

Training chaos (:mod:`repro.resilience.chaos`) stages failures inside
``Trainer.fit``; the injectors here stage them at the *serving* boundary
instead — a model that goes numerically bad mid-flight
(:class:`NaNModel`), a model that blows its latency budget
(:class:`SlowModel`), callers sending garbage
(:func:`malformed_payloads`), and a checkpoint corrupted between write
and warm reload (reuse :func:`repro.resilience.chaos.corrupt_checkpoint`).
Each is deterministic and togglable so tests walk the breaker through
closed → open → half-open → closed on a fake clock.
"""

from __future__ import annotations

import time

import numpy as np

from ..autodiff import Tensor


class _ModelWrapper:
    """Delegate everything (state_dict, num_nodes, eval, ...) to the inner model."""

    def __init__(self, inner):
        self.inner = inner

    def __getattr__(self, name):
        if name == "inner":  # guard: deepcopy probes before __dict__ exists
            raise AttributeError(name)
        return getattr(self.inner, name)

    def eval(self):
        self.inner.eval()
        return self

    def __call__(self, x, t):
        return self.inner(x, t)


class NaNModel(_ModelWrapper):
    """Poison the wrapped model's output with NaN while ``failing`` is set.

    The shape/dtype stay exactly right — only the values are garbage, the
    way real weight divergence looks to a caller.  Flip ``failing = False``
    to clear the fault and let a half-open probe succeed.
    """

    def __init__(self, inner, failing: bool = True):
        super().__init__(inner)
        self.failing = failing
        self.calls = 0

    def __call__(self, x, t):
        self.calls += 1
        out = self.inner(x, t)
        if not self.failing:
            return out
        return Tensor(np.full_like(out.numpy(), np.nan))


class SlowModel(_ModelWrapper):
    """Add ``delay`` seconds of wall time per forward pass.

    ``sleep`` is injectable so tests can count invocations without
    actually sleeping.
    """

    def __init__(self, inner, delay: float = 0.5, sleep=time.sleep):
        super().__init__(inner)
        self.delay = delay
        self._sleep = sleep
        self.calls = 0

    def __call__(self, x, t):
        self.calls += 1
        self._sleep(self.delay)
        return self.inner(x, t)


def malformed_payloads(spec) -> list[tuple[str, dict]]:
    """A deterministic catalog of bad requests, one per front-door check.

    Returns ``(expected_code, payload)`` pairs; every payload must be
    rejected with :class:`~repro.serve.InvalidRequestError` carrying that
    code (asserted by tests and the ``serve`` smoke harness).
    """
    good_window = np.zeros(spec.window_shape)
    good_times = np.arange(spec.span)
    nan_window = good_window.copy()
    nan_window.flat[0] = np.nan
    drifted = good_window.copy()
    if spec.scale_limit is not None:
        drifted.flat[0] = spec.scale_limit * 100.0
    catalog = [
        ("schema", {"time_index": good_times}),                        # window missing
        ("schema", {"window": good_window, "time_index": good_times,
                    "bogus_field": 1}),                                # unknown field
        ("shape", {"window": good_window[:, :-1], "time_index": good_times}),
        ("dtype", {"window": np.full(spec.window_shape, "x", dtype=object),
                   "time_index": good_times}),
        ("non_finite", {"window": nan_window, "time_index": good_times}),
        ("time_index", {"window": good_window,
                        "time_index": good_times[::-1].copy()}),       # decreasing
    ]
    if spec.scale_limit is not None:
        catalog.append(("scale_drift", {"window": drifted, "time_index": good_times}))
    return catalog
