"""Time representation functions Φ(t) (§III-A-2 and ablations of Table VII).

Three encoders share one interface — map integer time-slot indices to
``d_T``-dimensional vectors:

* :class:`DiscreteTimeEmbedding` — the paper's choice: a learnable table
  over the discretized day, regularized by time-discrepancy learning.
* :class:`Time2Vec` — Kazemi et al. 2019 (ablation row "Time2vec").
* :class:`ContinuousTimeRepresentation` — TGAT-style functional encoding,
  Xu et al. 2019 (ablation row "CTR").
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, gather_rows
from ..nn import Module, Parameter, init


class TimeEncoder(Module):
    """Interface: integer slot indices -> (..., dim) embedding tensor."""

    #: dimensionality of the produced representation
    dim: int
    #: number of discrete slots in one period (e.g. 96 for 15-min days)
    num_slots: int

    def forward(self, time_indices: np.ndarray) -> Tensor:
        raise NotImplementedError

    def table(self) -> Tensor:
        """Representation of every slot, shape (num_slots, dim)."""
        return self.forward(np.arange(self.num_slots))


class DiscreteTimeEmbedding(TimeEncoder):
    """Learnable per-slot vectors E_τ ∈ R^{|T| × d_T} (the paper's Φ).

    The day is discretized into ``num_slots`` timestamps; indices are taken
    modulo ``num_slots``, so a window crossing midnight wraps around.
    """

    def __init__(self, num_slots: int, dim: int, *, rng: np.random.Generator):
        super().__init__()
        if num_slots < 2:
            raise ValueError("need at least two slots per period")
        self.num_slots = num_slots
        self.dim = dim
        self.weight = Parameter(init.normal((num_slots, dim), rng, std=1.0 / np.sqrt(dim)))

    def forward(self, time_indices: np.ndarray) -> Tensor:
        idx = np.asarray(time_indices, dtype=np.int64) % self.num_slots
        return gather_rows(self.weight, idx)


class Time2Vec(TimeEncoder):
    """t2v(τ) = [ω₀τ + φ₀, sin(ω₁τ + φ₁), ..., sin(ω_{d-1}τ + φ_{d-1})]."""

    def __init__(self, num_slots: int, dim: int, *, rng: np.random.Generator):
        super().__init__()
        if dim < 2:
            raise ValueError("Time2Vec needs dim >= 2 (one linear + periodic terms)")
        self.num_slots = num_slots
        self.dim = dim
        self.omega = Parameter(init.normal((dim,), rng, std=1.0))
        self.phi = Parameter(init.normal((dim,), rng, std=1.0))

    def forward(self, time_indices: np.ndarray) -> Tensor:
        # Scale slots into [0, 2π) so learned frequencies start well-posed.
        t = np.asarray(time_indices, dtype=float) * (2.0 * np.pi / self.num_slots)
        phase = Tensor(t[..., None]) * self.omega + self.phi
        linear = phase[..., 0:1]
        periodic = _sin(phase[..., 1:])
        return concat([linear, periodic], axis=-1)


class ContinuousTimeRepresentation(TimeEncoder):
    """TGAT functional encoding Φ(t) = sqrt(1/d)[cos(ω₁t), ..., cos(ω_d t)].

    Frequencies are learnable and initialized geometrically, as in the
    original self-attention-with-time paper.
    """

    def __init__(self, num_slots: int, dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.num_slots = num_slots
        self.dim = dim
        base = 1.0 / (10.0 ** np.linspace(0, 2, dim))
        self.omega = Parameter(base + rng.normal(scale=1e-3, size=dim))

    def forward(self, time_indices: np.ndarray) -> Tensor:
        t = np.asarray(time_indices, dtype=float) * (2.0 * np.pi / self.num_slots)
        phase = Tensor(t[..., None]) * self.omega
        return _cos(phase) * (1.0 / np.sqrt(self.dim))


def make_time_encoder(kind: str, num_slots: int, dim: int, *, rng: np.random.Generator) -> TimeEncoder:
    """Factory used by the ablation harness (Table VII rows)."""
    kinds = {
        "embedding": DiscreteTimeEmbedding,
        "time2vec": Time2Vec,
        "ctr": ContinuousTimeRepresentation,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown time encoder {kind!r}; choose from {sorted(kinds)}") from None
    return cls(num_slots, dim, rng=rng)


def _sin(x: Tensor) -> Tensor:
    return x.sin()


def _cos(x: Tensor) -> Tensor:
    return x.cos()
