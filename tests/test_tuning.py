"""Tests for the hyper-parameter search module."""

import numpy as np
import pytest

from repro.training import TrainingConfig
from repro.tuning import SearchReport, grid_candidates, random_candidates, search


class TestCandidateGeneration:
    def test_grid_is_cartesian_product(self):
        space = {"a": [1, 2], "b": ["x", "y", "z"]}
        candidates = grid_candidates(space)
        assert len(candidates) == 6
        assert {"a": 2, "b": "y"} in candidates

    def test_grid_empty_space(self):
        assert grid_candidates({}) == [{}]

    def test_grid_is_deterministic(self):
        space = {"b": [1, 2], "a": [3]}
        assert grid_candidates(space) == grid_candidates(space)

    def test_random_samples_from_lists(self):
        rng = np.random.default_rng(0)
        space = {"a": [1, 2, 3], "b": [10]}
        candidates = random_candidates(space, 20, rng)
        assert len(candidates) == 20
        assert all(c["a"] in (1, 2, 3) and c["b"] == 10 for c in candidates)

    def test_random_is_seeded(self):
        space = {"a": list(range(100))}
        a = random_candidates(space, 5, np.random.default_rng(7))
        b = random_candidates(space, 5, np.random.default_rng(7))
        assert a == b


class TestSearch:
    def test_unknown_strategy(self, tiny_task):
        with pytest.raises(ValueError):
            search(tiny_task, {}, strategy="bayesian")

    def test_empty_report_has_no_best(self):
        with pytest.raises(ValueError):
            SearchReport().best

    def test_grid_search_ranks_by_val_mae(self, tiny_task):
        report = search(
            tiny_task,
            {"node_dim": [2, 4]},
            base_config=TrainingConfig(epochs=1, batch_size=64),
            base_model_kwargs={"time_dim": 4, "num_layers": 1},
            hidden_dim=8,
        )
        assert len(report.trials) == 2
        assert report.best.val_mae == min(t.val_mae for t in report.trials)
        assert "node_dim" in report.table()

    def test_training_keys_route_to_config(self, tiny_task):
        report = search(
            tiny_task,
            {"lambda_time": [0.0, 0.2]},
            base_config=TrainingConfig(epochs=1, batch_size=64),
            base_model_kwargs={"node_dim": 4, "time_dim": 4, "num_layers": 1},
            hidden_dim=8,
        )
        assert len(report.trials) == 2
        # Both trials trained the same architecture (params only differ in λ).
        counts = {t.result.num_parameters for t in report.trials}
        assert len(counts) == 1

    def test_random_search_trial_count(self, tiny_task):
        report = search(
            tiny_task,
            {"node_dim": [2, 4, 6]},
            strategy="random",
            num_samples=3,
            base_config=TrainingConfig(epochs=1, batch_size=64),
            base_model_kwargs={"time_dim": 4, "num_layers": 1},
            hidden_dim=8,
        )
        assert len(report.trials) == 3

    def test_search_over_baseline(self, tiny_task):
        report = search(
            tiny_task,
            {},
            model_name="fclstm",
            base_config=TrainingConfig(epochs=1, batch_size=64),
            hidden_dim=8,
        )
        assert report.best.result.model_name == "fclstm"
