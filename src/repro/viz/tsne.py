"""Exact t-SNE (van der Maaten & Hinton 2008) in numpy.

Fig. 12 projects the 73 learned time-embedding vectors to 2-D; at that
size the exact O(n²) algorithm is instantaneous, so no Barnes-Hut
approximation is needed.  Perplexity calibration uses the standard
bisection search on each point's conditional distribution entropy.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sums = (x ** 2).sum(axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _conditional_probabilities(d2_row: np.ndarray, beta: float) -> tuple[np.ndarray, float]:
    """P_{j|i} at precision beta and the Shannon entropy of the row."""
    p = np.exp(-d2_row * beta)
    total = p.sum()
    if total <= 0:
        p = np.full_like(d2_row, 1.0 / len(d2_row))
        return p, np.log(len(d2_row))
    p = p / total
    entropy = -np.sum(p * np.log(np.maximum(p, 1e-12)))
    return p, entropy


def joint_probabilities(x: np.ndarray, perplexity: float = 15.0, tol: float = 1e-5) -> np.ndarray:
    """Symmetrized P matrix with per-point precision search."""
    n = x.shape[0]
    d2 = _pairwise_sq_distances(x)
    target_entropy = np.log(perplexity)
    conditionals = np.zeros((n, n))
    for i in range(n):
        row = np.delete(d2[i], i)
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        p = None
        for _ in range(64):
            p, entropy = _conditional_probabilities(row, beta)
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> increase precision
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else 0.5 * (beta + beta_max)
            else:
                beta_max = beta
                beta = 0.5 * (beta + beta_min)
        conditionals[i, np.arange(n) != i] = p
    joint = (conditionals + conditionals.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def tsne(
    x: np.ndarray,
    dim: int = 2,
    perplexity: float = 15.0,
    iterations: int = 400,
    learning_rate: float | None = None,
    seed: int = 0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 100,
) -> np.ndarray:
    """Embed (n, d) points into (n, dim) via gradient descent on KL(P||Q).

    ``learning_rate`` defaults to the sklearn "auto" heuristic
    ``max(n / early_exaggeration / 4, 50)`` which keeps small problems
    stable.
    """
    x = np.asarray(x, dtype=float)
    n = x.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    if learning_rate is None:
        learning_rate = max(n / early_exaggeration / 4.0, 50.0)
    perplexity = min(perplexity, (n - 1) / 3.0)
    p = joint_probabilities(x, perplexity=perplexity)
    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-2, size=(n, dim))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    for it in range(iterations):
        p_eff = p * early_exaggeration if it < exaggeration_iters else p
        d2 = _pairwise_sq_distances(y)
        num = 1.0 / (1.0 + d2)
        np.fill_diagonal(num, 0.0)
        q = np.maximum(num / num.sum(), 1e-12)
        pq = (p_eff - q) * num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if it < 250 else 0.8
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y


def ordering_score(embedding: np.ndarray) -> float:
    """Spearman rank correlation between index order and the 1-D ordering
    of an embedding projected onto its principal axis.

    This quantifies Fig. 12's visual claim ("positional ordering with
    clear proportional discrepancy"): near ±1 means time slots stay
    sequentially arranged after t-SNE; near 0 means a "confusing pattern".
    """
    centered = embedding - embedding.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    projection = centered @ vt[0]
    n = len(projection)
    ranks = np.empty(n)
    ranks[np.argsort(projection)] = np.arange(n)
    index_ranks = np.arange(n)
    rank_corr = np.corrcoef(ranks, index_ranks)[0, 1]
    return float(abs(rank_corr))
