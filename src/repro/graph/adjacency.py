"""Adjacency-matrix normalizations (Eq. 10–11 of the paper).

The GCGRU normalizes the learned time-aware adjacency before convolution
("Norm denotes a normalization function, e.g., the softmax function").
Differentiable variants operate on :class:`~repro.autodiff.Tensor`; plain
numpy versions (suffix ``_np``) serve pre-defined graphs that carry no
gradients.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, ensure_tensor, softmax

_EPS = 1e-10


def row_softmax(adjacency: Tensor) -> Tensor:
    """Softmax over each row — the paper's default Norm for A^t."""
    return softmax(ensure_tensor(adjacency), axis=-1)


def sym_laplacian(adjacency: Tensor, add_self_loops: bool = True) -> Tensor:
    """Symmetric normalization D^{-1/2} (A + I) D^{-1/2} (Kipf & Welling).

    Differentiable; negative weights are admitted through a ReLU so the
    degree stays positive.
    """
    adjacency = ensure_tensor(adjacency).relu()
    n = adjacency.shape[-1]
    if add_self_loops:
        adjacency = adjacency + Tensor(np.eye(n))
    degree = adjacency.sum(axis=-1)
    inv_sqrt = (degree + _EPS) ** -0.5
    return adjacency * inv_sqrt.unsqueeze(-1) * inv_sqrt.unsqueeze(-2)


def random_walk(adjacency: Tensor, add_self_loops: bool = False) -> Tensor:
    """Row-stochastic normalization D^{-1} A (diffusion-convolution support)."""
    adjacency = ensure_tensor(adjacency).relu()
    if add_self_loops:
        n = adjacency.shape[-1]
        adjacency = adjacency + Tensor(np.eye(n))
    degree = adjacency.sum(axis=-1, keepdims=True)
    return adjacency / (degree + _EPS)


def normalize(adjacency: Tensor, mode: str = "softmax") -> Tensor:
    """Dispatch by name; used by TagSL's Norm(A^t)."""
    modes = {
        "softmax": row_softmax,
        "sym": sym_laplacian,
        "random_walk": random_walk,
    }
    try:
        return modes[mode](adjacency)
    except KeyError:
        raise ValueError(f"unknown normalization {mode!r}; choose from {sorted(modes)}") from None


def sym_laplacian_np(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Numpy-only symmetric normalization for fixed pre-defined graphs."""
    adjacency = np.maximum(adjacency, 0.0)
    if add_self_loops:
        adjacency = adjacency + np.eye(adjacency.shape[-1])
    inv_sqrt = 1.0 / np.sqrt(adjacency.sum(axis=-1) + _EPS)
    return adjacency * inv_sqrt[..., :, None] * inv_sqrt[..., None, :]


def random_walk_np(adjacency: np.ndarray) -> np.ndarray:
    """Numpy-only row-stochastic normalization (DCRNN forward diffusion)."""
    adjacency = np.maximum(adjacency, 0.0)
    degree = adjacency.sum(axis=-1, keepdims=True)
    return adjacency / (degree + _EPS)
