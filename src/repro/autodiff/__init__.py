"""Reverse-mode autodiff substrate (numpy-backed, PyTorch-like semantics)."""

from .tensor import (
    DEFAULT_DTYPE,
    Tensor,
    concat,
    ensure_tensor,
    gather_rows,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    ones,
    randn,
    set_symbolic_handler,
    stack,
    tensor,
    unbroadcast,
    where,
    zeros,
)
from .functional import (
    dropout,
    gumbel_softmax,
    huber_loss,
    l2_norm,
    log_softmax,
    mae_loss,
    mse_loss,
    one_hot,
    pairwise_euclidean,
    softmax,
)
from .grad_check import check_gradients, numerical_gradient

_ENGINE_EXPORTS = (
    "CompiledModel",
    "ExecutionEngine",
    "PlanUnsupported",
    "ReplayMismatch",
    "discover_rngs",
)


def __getattr__(name):
    # The compile-and-replay engine (docs/engine.md) is loaded lazily:
    # it patches nothing at import time, but pulling it in eagerly would
    # cost every import of the substrate the module's setup.
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompiledModel",
    "DEFAULT_DTYPE",
    "ExecutionEngine",
    "PlanUnsupported",
    "ReplayMismatch",
    "Tensor",
    "check_gradients",
    "discover_rngs",
    "concat",
    "dropout",
    "ensure_tensor",
    "gather_rows",
    "gumbel_softmax",
    "huber_loss",
    "is_grad_enabled",
    "l2_norm",
    "log_softmax",
    "mae_loss",
    "maximum",
    "minimum",
    "mse_loss",
    "no_grad",
    "numerical_gradient",
    "one_hot",
    "ones",
    "pairwise_euclidean",
    "randn",
    "set_symbolic_handler",
    "softmax",
    "stack",
    "tensor",
    "unbroadcast",
    "where",
    "zeros",
]
