"""Bike-sharing demand forecasting (the NYC-Bike scenario, Table V).

Run:  python examples/bike_demand.py

Long-horizon demand forecasting: 6-hour histories predict the next 6
hours of pick-up/drop-off demand at 30-minute resolution.  Demonstrates
per-horizon evaluation (Fig. 8's analysis) and the PCC metric used for
demand datasets.
"""

import numpy as np

from repro import load_task
from repro.training import TrainingConfig, format_relative_series, run_experiment


def main():
    # P = Q = 12 half-hour steps, as in the paper's NYC setup.
    task = load_task("nyc_bike", num_nodes=10, num_days=8, seed=0)
    print(f"{task.name}: {task.num_nodes} docks, P={task.history}, Q={task.horizon}")

    config = TrainingConfig(epochs=6, batch_size=16)
    curves = {}
    summary = []
    for name in ("ha", "fclstm", "tgcrn"):
        kwargs = (
            dict(model_kwargs=dict(node_dim=8, time_dim=8, num_layers=1))
            if name == "tgcrn" else {}
        )
        result = run_experiment(name, task, config, hidden_dim=16, num_layers=1, **kwargs)
        curves[name] = result.horizon_metric("mae")
        summary.append((name, result.overall))

    print(f"\n{'model':<8} {'MAE':>8} {'RMSE':>8} {'PCC':>7}")
    for name, overall in summary:
        print(f"{name:<8} {overall.mae:8.3f} {overall.rmse:8.3f} {overall.pcc:7.4f}")

    print("\nPer-horizon MAE relative to FC-LSTM (the paper's Fig. 8 view):")
    benchmark = curves["fclstm"]
    for name in ("ha", "fclstm", "tgcrn"):
        print(format_relative_series(name, curves[name], benchmark))
    print("\nA falling TGCRN curve means its advantage grows with the horizon.")


if __name__ == "__main__":
    main()
