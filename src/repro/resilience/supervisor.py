"""Replica supervision: heartbeat watchdog, restart budgets, parking.

The process transport (:mod:`repro.serve.proc`) makes replica death a
*normal* event — so something has to notice deaths, restart within a
budget, and refuse to restart-storm a replica that is crash-looping.
:class:`ReplicaSupervisor` is that something: a single-threaded state
machine over duck-typed replica handles, driven by ``poll(now)`` from
whoever already owns a loop (the fleet router calls it once per
``process_once`` round), on an **injectable clock** so every transition
is unit-testable without real processes or real time.

Per-replica lifecycle::

            spawn                ready
    (start) ─────► starting ────────────► running
                      │  ready deadline      │ heartbeat stale
                      │  or early exit       ▼
                      │               terminating ── SIGTERM sent
                      │                      │ term deadline → SIGKILL
                      ▼                      ▼
                    down ◄────────── process exited
                      │
        restarts in window ≤ budget?
          yes │                │ no
              ▼                ▼
           backoff          parked  (inert until unpark())
              │ delay due
              ▼
           starting  (handle.respawn())

Restart delays route through the existing
:class:`~repro.resilience.backoff.Backoff` seam (the supervisor never
sleeps — it schedules ``not_before`` on its clock).  Every transition
lands as a structured JSONL record (``replica_down``,
``replica_restart_scheduled``, ``replica_restarted``,
``replica_unresponsive``, ``replica_kill_escalated``,
``replica_parked``, ``supervisor_shutdown``) so chaos runs are
auditable after the fact.

Handle protocol (satisfied by
:class:`~repro.serve.proc.ProcReplicaClient`, faked in tests)::

    is_alive() -> bool          ready -> bool (property)
    last_heartbeat -> float|None  (same clock domain as the supervisor)
    pid -> int|None             poll_transport() -> ...
    respawn()  terminate_process()  kill_process()
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from .backoff import Backoff

STARTING = "starting"
RUNNING = "running"
TERMINATING = "terminating"
BACKOFF = "backoff"
PARKED = "parked"
STOPPED = "stopped"


@dataclass(frozen=True)
class RestartPolicy:
    """Budgets and deadlines governing one replica's lifecycle.

    ``max_restarts`` restarts within ``window_s`` seconds is the
    crash-loop line: one more and the replica is **parked** (taken out
    of supervision until an operator calls ``unpark``) instead of
    restart-stormed.  ``ready_deadline_s`` bounds startup (a fork that
    never says READY is killed and counted as a down),
    ``heartbeat_timeout_s`` bounds silence from a live process (a
    wedged child is SIGTERMed), and ``term_deadline_s`` bounds how long
    a SIGTERM may be ignored before SIGKILL escalation.
    """

    max_restarts: int = 5
    window_s: float = 30.0
    ready_deadline_s: float = 5.0
    heartbeat_timeout_s: float = 1.0
    term_deadline_s: float = 2.0


class _Entry:
    def __init__(self, replica_id: str, handle, on_down, on_up):
        self.replica_id = replica_id
        self.handle = handle
        self.on_down = on_down
        self.on_up = on_up
        self.state = STARTING
        self.state_since = 0.0
        self.restarts: deque[float] = deque()
        self.not_before = 0.0
        self.total_restarts = 0


class ReplicaSupervisor:
    """Watchdog + restart scheduler over a set of replica handles.

    Parameters
    ----------
    policy:
        A :class:`RestartPolicy` (defaults are test-friendly seconds;
        production callers pass their own).
    backoff:
        The restart-delay schedule — a
        :class:`~repro.resilience.backoff.Backoff`; only ``delay()`` is
        used, on the attempt count within the current window.
    clock:
        Injectable monotonic time source.  ``handle.last_heartbeat``
        values must be on the same clock.
    logger / metrics:
        Structured JSONL sink and counter registry (both optional).
    """

    def __init__(self, policy: RestartPolicy | None = None,
                 backoff: Backoff | None = None, *,
                 clock=time.monotonic, logger=None, metrics=None):
        self.policy = policy if policy is not None else RestartPolicy()
        self.backoff = (backoff if backoff is not None
                        else Backoff(base=0.05, max_delay=2.0, jitter=0.5))
        self._clock = clock
        self.logger = logger
        self.metrics = metrics
        self._entries: dict[str, _Entry] = {}
        self._shutdown = False

    # -- registration ----------------------------------------------------- #

    def register(self, replica_id: str, handle, *,
                 on_down=None, on_up=None) -> None:
        """Adopt a (already spawned) replica handle into supervision.

        ``on_down(replica_id, reason)`` fires the moment the replica
        leaves rotation (death, staleness, start timeout) — the fleet
        uses it to mark the replica down so routing fails over
        immediately.  ``on_up(replica_id)`` fires when a (re)start
        reports READY.
        """
        entry = _Entry(replica_id, handle, on_down, on_up)
        entry.state = RUNNING if handle.ready else STARTING
        entry.state_since = self._now(None)
        self._entries[replica_id] = entry

    # -- introspection ---------------------------------------------------- #

    def state(self, replica_id: str) -> str:
        return self._entries[replica_id].state

    def states(self) -> dict[str, str]:
        return {rid: e.state for rid, e in self._entries.items()}

    def is_parked(self, replica_id: str) -> bool:
        return self._entries[replica_id].state == PARKED

    def restart_count(self, replica_id: str) -> int:
        return self._entries[replica_id].total_restarts

    def unpark(self, replica_id: str, now: float | None = None) -> None:
        """Operator override: forget the crash-loop history, restart."""
        now = self._now(now)
        entry = self._entries[replica_id]
        if entry.state != PARKED:
            return
        entry.restarts.clear()
        entry.state = BACKOFF
        entry.state_since = now
        entry.not_before = now
        self._log("replica_unparked", replica_id=replica_id)

    # -- the watchdog ------------------------------------------------------ #

    def poll(self, now: float | None = None) -> None:
        """One supervision round over every registered replica."""
        if self._shutdown:
            return
        now = self._now(now)
        for entry in self._entries.values():
            if entry.state in (PARKED, STOPPED):
                continue
            self._pump(entry)
            handler = getattr(self, f"_poll_{entry.state}")
            handler(entry, now)

    @staticmethod
    def _pump(entry: _Entry) -> None:
        # Drain the handle's transport even when the router is not
        # routing to it (killed / restarting replicas would otherwise
        # never get their READY or heartbeat frames read).
        poll_transport = getattr(entry.handle, "poll_transport", None)
        if poll_transport is not None:
            try:
                poll_transport()
            except Exception:  # analyze: allow[RL006] best-effort pump; state polls judge the handle
                pass

    def _poll_starting(self, entry: _Entry, now: float) -> None:
        if entry.handle.ready:
            self._mark_up(entry, now)
        elif not entry.handle.is_alive():
            self._down(entry, now, reason="exited during startup")
        elif now - entry.state_since > self.policy.ready_deadline_s:
            self._count("supervisor.start_timeouts")
            self._log("replica_start_timeout", replica_id=entry.replica_id,
                      waited_s=now - entry.state_since,
                      deadline_s=self.policy.ready_deadline_s)
            entry.handle.kill_process()
            self._down(entry, now, reason="ready deadline exceeded")

    def _poll_running(self, entry: _Entry, now: float) -> None:
        if not entry.handle.is_alive():
            self._down(entry, now, reason="process exited")
            return
        heartbeat = entry.handle.last_heartbeat
        if (heartbeat is not None
                and now - heartbeat > self.policy.heartbeat_timeout_s):
            self._count("supervisor.unresponsive")
            self._log("replica_unresponsive", replica_id=entry.replica_id,
                      heartbeat_age_s=now - heartbeat,
                      timeout_s=self.policy.heartbeat_timeout_s)
            self._notify_down(entry, "heartbeat stale")
            entry.handle.terminate_process()
            entry.state = TERMINATING
            entry.state_since = now

    def _poll_terminating(self, entry: _Entry, now: float) -> None:
        if not entry.handle.is_alive():
            self._down(entry, now, reason="terminated")
        elif now - entry.state_since > self.policy.term_deadline_s:
            self._count("supervisor.kill_escalations")
            self._log("replica_kill_escalated", replica_id=entry.replica_id,
                      waited_s=now - entry.state_since)
            entry.handle.kill_process()
            self._down(entry, now, reason="kill escalated")

    def _poll_backoff(self, entry: _Entry, now: float) -> None:
        if now >= entry.not_before:
            entry.handle.respawn()
            entry.total_restarts += 1
            entry.state = STARTING
            entry.state_since = now
            self._count("supervisor.restarts")
            self._log("replica_restarted", replica_id=entry.replica_id,
                      pid=entry.handle.pid,
                      restarts_in_window=len(entry.restarts))

    # -- transitions ------------------------------------------------------- #

    def _mark_up(self, entry: _Entry, now: float) -> None:
        entry.state = RUNNING
        entry.state_since = now
        self._log("replica_up", replica_id=entry.replica_id,
                  pid=entry.handle.pid)
        if entry.on_up is not None:
            entry.on_up(entry.replica_id)

    def _notify_down(self, entry: _Entry, reason: str) -> None:
        if entry.on_down is not None:
            entry.on_down(entry.replica_id, reason)

    def _down(self, entry: _Entry, now: float, reason: str) -> None:
        self._log("replica_down", replica_id=entry.replica_id,
                  reason=reason, pid=entry.handle.pid)
        self._notify_down(entry, reason)
        entry.restarts.append(now)
        while entry.restarts and now - entry.restarts[0] > self.policy.window_s:
            entry.restarts.popleft()
        if len(entry.restarts) > self.policy.max_restarts:
            entry.state = PARKED
            entry.state_since = now
            self._count("supervisor.parked")
            self._log("replica_parked", replica_id=entry.replica_id,
                      reason=reason,
                      restarts_in_window=len(entry.restarts),
                      window_s=self.policy.window_s,
                      max_restarts=self.policy.max_restarts)
            return
        attempt = max(0, len(entry.restarts) - 1)
        delay = self.backoff.delay(attempt)
        entry.state = BACKOFF
        entry.state_since = now
        entry.not_before = now + delay
        self._log("replica_restart_scheduled", replica_id=entry.replica_id,
                  reason=reason, delay_s=delay, attempt=attempt)

    # -- shutdown ---------------------------------------------------------- #

    def disable(self) -> None:
        """Stop supervising without touching the children.

        For callers that own an orderly per-replica close (the fleet's
        ``stop``) and only need the watchdog to stand down so it cannot
        restart what is being torn down.
        """
        self._shutdown = True

    def shutdown(self, timeout: float | None = None, sleep=time.sleep) -> dict:
        """Stop supervising; TERM every child, KILL the survivors.

        Returns ``{"terminated": n, "killed": m}``.  ``sleep`` is
        injectable so tests with fake handles never block.
        """
        self._shutdown = True
        timeout = (self.policy.term_deadline_s if timeout is None
                   else timeout)
        terminated = 0
        for entry in self._entries.values():
            if entry.handle.is_alive():
                entry.handle.terminate_process()
                terminated += 1
        step = 0.02
        for _ in range(max(1, int(timeout / step))):
            if not any(e.handle.is_alive() for e in self._entries.values()):
                break
            for entry in self._entries.values():
                self._pump(entry)
            sleep(step)
        killed = 0
        for entry in self._entries.values():
            if entry.handle.is_alive():
                entry.handle.kill_process()
                killed += 1
            entry.state = STOPPED
        self._log("supervisor_shutdown", terminated=terminated, killed=killed)
        return {"terminated": terminated, "killed": killed}

    # -- plumbing ---------------------------------------------------------- #

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.log(event, **fields)
