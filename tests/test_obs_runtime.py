"""Metrics registry, run logger, graphwatch, and trainer/CLI integration."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    GraphWatch,
    MetricsRegistry,
    RunLogger,
    adjacency_entropy,
    adjacency_sparsity,
    embedding_drift,
    gate_activation_rate,
    read_jsonl,
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("batches").inc()
        m.counter("batches").inc(2)
        m.gauge("lr").set(1e-3)
        for v in (1.0, 2.0, 3.0):
            m.histogram("loss").observe(v)
        snap = m.snapshot()
        assert snap["counters"]["batches"] == 3
        assert snap["gauges"]["lr"] == 1e-3
        h = snap["histograms"]["loss"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == pytest.approx(2.0)
        assert h["std"] == pytest.approx(math.sqrt(2.0 / 3.0))
        assert h["last"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_histogram_quantiles(self):
        h = MetricsRegistry().histogram("lat")
        assert math.isnan(h.quantile(0.5))  # no observations yet
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.95) == pytest.approx(95.05)
        assert h.summary()["p50"] == pytest.approx(50.5)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_single_sample_and_percentiles(self):
        h = MetricsRegistry().histogram("lat")
        assert all(math.isnan(v) for v in h.percentiles().values())
        h.observe(42.0)
        assert h.quantile(0.0) == 42.0
        assert h.quantile(0.5) == 42.0
        assert h.quantile(1.0) == 42.0
        assert h.percentiles() == {"p50": 42.0, "p95": 42.0, "p99": 42.0}

    def test_histogram_sample_window_is_bounded(self):
        h = MetricsRegistry().histogram("lat")
        h.sample_size = 8
        for v in range(1000):
            h.observe(float(v))
        assert len(h._sample) == 8
        assert h.count == 1000  # streaming stats still exact
        assert h.quantile(1.0) >= 992.0  # recency-biased window

    def test_timer_observes_seconds(self):
        m = MetricsRegistry()
        with m.timer("block"):
            sum(range(1000))
        h = m.histogram("block")
        assert h.count == 1
        assert h.last > 0.0

    def test_emit_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        m = MetricsRegistry(run="unit")
        m.counter("n").inc(5)
        m.gauge("g").set(2.5)
        m.histogram("h").observe(1.0)
        m.emit(path)
        m.counter("n").inc()
        m.emit(path)
        records = read_jsonl(path)
        assert len(records) == 2
        for record in records:
            assert set(record) >= {"ts", "run", "counters", "gauges", "histograms"}
            assert record["run"] == "unit"
        assert records[0]["counters"]["n"] == 5
        assert records[1]["counters"]["n"] == 6
        assert records[0]["histograms"]["h"]["count"] == 1


class TestRunLogger:
    def test_epoch_records_and_console_line(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with RunLogger(path=path, console=True, metadata={"model": "unit"}) as log:
            log.log_epoch(0, train_loss=0.5, val_mae=1.25, lr=1e-3,
                          grad_norm=0.7, epoch_seconds=0.01)
            log.log_summary(best_epoch=0)
        out = capsys.readouterr().out
        assert "epoch   0 loss 0.5000 val MAE 1.2500 lr 1.00e-03" in out
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["start", "epoch", "end"]
        assert records[0]["model"] == "unit"
        assert records[1]["epoch"] == 0
        assert records[2]["epochs"] == 1

    def test_silent_sink_without_path(self, capsys):
        log = RunLogger()  # no path, no console
        log.log_epoch(0, train_loss=1.0)
        log.close()
        assert capsys.readouterr().out == ""

    def test_numpy_values_serialize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path=path) as log:
            log.log("custom", value=np.float64(1.5), arr=np.arange(3))
        record = read_jsonl(path)[1]
        assert record["value"] == 1.5
        assert record["arr"] == [0, 1, 2]


class TestGraphwatchHelpers:
    def test_entropy_hand_computed_2x2(self):
        # row [0.5, 0.5] -> ln 2; row [1, 0] -> 0; mean = ln(2)/2
        adj = np.array([[0.5, 0.5], [1.0, 0.0]])
        assert adjacency_entropy(adj) == pytest.approx(math.log(2) / 2, abs=1e-6)

    def test_entropy_uniform_is_log_n(self):
        adj = np.full((3, 3), 1.0 / 3.0)
        assert adjacency_entropy(adj) == pytest.approx(math.log(3), abs=1e-6)

    def test_sparsity_hand_computed(self):
        adj = np.array([[0.9, 0.0], [1e-6, 0.4]])
        assert adjacency_sparsity(adj, threshold=1e-3) == pytest.approx(0.5)

    def test_gate_activation_rate(self):
        # sigmoid > 0.5 iff input > 0: exactly 2 of 4 entries
        a_p = np.array([[1.0, -1.0], [0.5, -0.2]])
        assert gate_activation_rate(a_p) == pytest.approx(0.5)

    def test_embedding_drift(self):
        w0 = np.eye(2)
        assert embedding_drift(w0, w0) == pytest.approx(0.0)
        assert embedding_drift(2 * w0, w0) == pytest.approx(1.0)


class TestGraphWatch:
    @pytest.fixture
    def tiny_model(self):
        from repro.core import TGCRN

        return TGCRN(
            num_nodes=3, in_dim=1, out_dim=1, horizon=2, hidden_dim=4,
            num_layers=1, node_dim=3, time_dim=3, steps_per_day=8,
            rng=np.random.default_rng(0),
        )

    def test_snapshot_schema(self, tiny_model):
        watch = GraphWatch(tiny_model)
        assert watch.available
        watch.observe_batch(np.random.default_rng(0).normal(size=(2, 4, 3, 1)),
                            np.arange(6)[None, :].repeat(2, axis=0))
        stats = watch.snapshot()
        expected = {"adj_entropy", "adj_sparsity", "trend_eta_abs", "gate_rate",
                    "gate_mean", "time_norm", "time_drift", "node_norm", "node_drift"}
        assert set(stats) == expected
        assert all(np.isfinite(v) for v in stats.values())
        # entropy of a 3-node softmax graph lies in (0, ln 3]
        assert 0.0 < stats["adj_entropy"] <= math.log(3) + 1e-9
        assert stats["time_drift"] == pytest.approx(0.0)  # untrained
        assert stats["node_drift"] == pytest.approx(0.0)

    def test_drift_moves_with_parameters(self, tiny_model):
        watch = GraphWatch(tiny_model)
        tiny_model.tagsl.node_embedding.data += 1.0
        tiny_model.time_encoder.weight.data *= 2.0
        stats = watch.snapshot()
        assert stats["node_drift"] > 0.0
        assert stats["time_drift"] > 0.0

    def test_unavailable_for_plain_models(self):
        class Dummy:
            pass

        watch = GraphWatch(Dummy())
        assert not watch.available
        assert watch.snapshot() == {}
        watch.observe_batch(np.zeros((1, 2, 2, 1)), np.zeros((1, 4)))  # no-op

    def test_snapshot_without_observe_batch(self, tiny_model):
        stats = GraphWatch(tiny_model).snapshot()
        assert np.isfinite(stats["adj_entropy"])
        # zero node-state: every gate sits exactly at sigma(0) = 0.5
        assert stats["gate_rate"] == pytest.approx(0.0)


class TestTrainerRunLog:
    def test_one_record_per_epoch(self, tmp_path, tiny_task):
        from repro.core import TGCRN
        from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs

        path = tmp_path / "train.jsonl"
        config = TrainingConfig(epochs=2, batch_size=8, seed=0,
                                log_path=str(path), verbose=False)
        model = TGCRN(**default_tgcrn_kwargs(task=tiny_task, hidden_dim=4,
                                             node_dim=3, time_dim=3, num_layers=1),
                      rng=np.random.default_rng(0))
        history = Trainer(config).fit(model, tiny_task)

        records = read_jsonl(path)
        epochs = [r for r in records if r["event"] == "epoch"]
        assert len(epochs) == history.epochs_run == 2
        for record in epochs:
            for key in ("train_loss", "l_error", "l_time", "val_mae", "lr",
                        "grad_norm", "epoch_seconds", "graph"):
                assert key in record, f"missing {key}"
            assert record["graph"]["adj_entropy"] > 0.0
            assert record["epoch_seconds"] > 0.0
            assert record["grad_norm"] >= 0.0
        assert records[0]["event"] == "start"
        assert records[-1]["event"] == "end"
        assert records[-1]["best_val_mae"] == pytest.approx(history.best_val_mae)

    def test_history_gains_lr_and_grad_norm(self, tiny_task):
        from repro.core import TGCRN
        from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs

        config = TrainingConfig(epochs=2, batch_size=8, seed=0,
                                lr_milestones=(1,), lr_gamma=0.5)
        model = TGCRN(**default_tgcrn_kwargs(task=tiny_task, hidden_dim=4,
                                             node_dim=3, time_dim=3, num_layers=1),
                      rng=np.random.default_rng(0))
        history = Trainer(config).fit(model, tiny_task)
        assert len(history.lrs) == len(history.grad_norms) == 2
        assert history.lrs[0] == pytest.approx(1e-3)
        assert history.lrs[1] == pytest.approx(5e-4)  # decayed at milestone 1
        assert all(g > 0.0 for g in history.grad_norms)
        # Eq. 17 split is recorded and recombines into the joint loss
        assert len(history.error_losses) == len(history.time_losses) == 2
        for total, err, tl in zip(history.train_losses, history.error_losses,
                                  history.time_losses):
            assert total == pytest.approx(err + config.lambda_time * tl, rel=1e-9)


class TestCliObservability:
    _DS = ["--dataset", "hzmetro", "--nodes", "6", "--days", "5"]
    _TINY = ["--epochs", "1", "--hidden", "4", "--node-dim", "3", "--time-dim", "3"]

    def test_profile_writes_trace_and_prints_table(self, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "trace.json"
        log_out = tmp_path / "run.jsonl"
        code = main(["profile", *self._DS, *self._TINY,
                     "--trace-out", str(trace_out), "--log-jsonl", str(log_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "chrome trace written" in out
        payload = json.loads(trace_out.read_text())
        assert payload["traceEvents"]
        epochs = [r for r in read_jsonl(log_out) if r["event"] == "epoch"]
        assert len(epochs) == 1

    def test_train_quiet_suppresses_stdout(self, capsys):
        from repro.cli import main

        code = main(["train", *self._DS, *self._TINY, "--model", "ha", "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_train_log_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        log_out = tmp_path / "run.jsonl"
        code = main(["train", *self._DS, *self._TINY, "--quiet",
                     "--log-jsonl", str(log_out)])
        assert code == 0
        assert capsys.readouterr().out == ""
        epochs = [r for r in read_jsonl(log_out) if r["event"] == "epoch"]
        assert len(epochs) == 1
        assert "graph" in epochs[0]

    def test_verify_quiet(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["verify", "--quiet", "--sample", "2",
                     "--golden", str(tmp_path / "missing.json")])
        assert code == 0
        assert capsys.readouterr().out == ""
