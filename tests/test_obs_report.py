"""Span-report analysis and the noise-aware perf-regression sentinel.

Trace records are hand-built dicts (the JSONL schema, not live spans),
so assembly, completeness verdicts, breakdowns, and critical paths are
exercised on exactly known shapes; the sentinel half plants a 3× slowdown
(must flag) and a uniformly-slower noisy machine (must not).
"""

import json

import pytest

from repro.obs.report import (
    assemble_traces,
    check_bench_regression,
    check_fleet_traces,
    check_request_traces,
    critical_path,
    load_spans,
    render_regressions,
    render_report,
    slowest_request,
    stage_breakdown,
)


def _rec(name, trace_id, span_id, parent_id=None, start=0.0, dur=1.0,
         status="ok", **extra):
    end = None if dur is None else start + dur
    return {
        "event": "span", "name": name, "trace_id": trace_id,
        "span_id": span_id, "parent_id": parent_id, "start": start,
        "end": end, "duration_ms": None if dur is None else dur * 1e3,
        "status": status, "thread": "t", **extra,
    }


def _request(trace_id, base, status="ok", stage="predict", stage_dur=0.03):
    """A complete serving trace: request → admission/queue_wait/stage."""
    sid = trace_id
    return [
        _rec("request", trace_id, f"{sid}-root", start=base, dur=0.05,
             status=status),
        _rec("admission", trace_id, f"{sid}-adm", f"{sid}-root",
             start=base, dur=0.001),
        _rec("queue_wait", trace_id, f"{sid}-q", f"{sid}-root",
             start=base + 0.001, dur=0.01),
        _rec(stage, trace_id, f"{sid}-st", f"{sid}-root",
             start=base + 0.015, dur=stage_dur),
    ]


class TestAssembly:
    def test_records_group_by_trace_and_children_sort_by_start(self):
        records = _request("req-0", 0.0) + _request("req-1", 1.0)
        trees = assemble_traces(records)
        assert set(trees) == {"req-0", "req-1"}
        tree = trees["req-0"]
        assert tree.root.name == "request" and len(tree.roots) == 1
        assert [c.name for c in tree.root.children] \
            == ["admission", "queue_wait", "predict"]
        assert tree.span_count == 4

    def test_walk_is_depth_first(self):
        records = _request("req-0", 0.0)
        records.append(_rec("engine_replay", "req-0", "req-0-rep",
                            "req-0-st", start=0.016, dur=0.02))
        (tree,) = assemble_traces(records).values()
        names = [n.name for n in tree.walk()]
        assert names.index("engine_replay") == names.index("predict") + 1

    def test_non_span_records_are_ignored(self):
        records = _request("req-0", 0.0) + [{"event": "epoch", "loss": 1.0}]
        trees = assemble_traces(records)
        assert trees["req-0"].span_count == 4


class TestCompleteness:
    def test_complete_ok_and_fallback_traces_pass(self):
        records = (_request("req-0", 0.0)
                   + _request("req-1", 1.0, status="degraded",
                              stage="fallback"))
        check = check_request_traces(assemble_traces(records))
        assert check.total == 2 and check.complete == 2 and check.ok

    def test_shed_trace_only_owes_admission(self):
        records = [
            _rec("request", "req-s", "s-root", start=0.0, dur=0.02,
                 status="shed"),
            _rec("admission", "req-s", "s-adm", "s-root", dur=0.001),
            _rec("queue_wait", "req-s", "s-q", "s-root", dur=0.01,
                 status="shed"),
        ]
        check = check_request_traces(assemble_traces(records))
        assert check.ok and check.complete == 1

    def test_missing_stage_orphan_and_unfinished_are_reported(self):
        records = _request("req-0", 0.0)
        records = [r for r in records if r["name"] != "queue_wait"]
        records.append(_rec("lost", "req-0", "x-lost", "never-seen",
                            dur=0.01))
        records.append(_rec("leak", "req-0", "x-leak", "req-0-root",
                            dur=None, status="unfinished"))
        check = check_request_traces(assemble_traces(records))
        assert not check.ok
        (entry,) = check.incomplete
        reasons = ";".join(entry["reasons"])
        assert "missing_stages:queue_wait" in reasons
        assert "orphan_spans:1" in reasons and "unfinished:leak" in reasons
        assert check.orphan_spans == 1 and check.unfinished_spans == 1

    def test_answered_request_without_predict_or_fallback_fails(self):
        records = [r for r in _request("req-0", 0.0)
                   if r["name"] != "predict"]
        check = check_request_traces(assemble_traces(records))
        (entry,) = check.incomplete
        assert "missing_stages:predict|fallback" in entry["reasons"]

    def test_non_request_trees_counted_separately(self):
        records = _request("req-0", 0.0)
        records.append(_rec("fit", "train-1", "f1", dur=2.0))
        check = check_request_traces(assemble_traces(records))
        assert check.total == 1 and check.other_traces == 1


def _fleet_request(trace_id, base=0.0, status="ok", with_replica=True):
    """A complete fleet trace: fleet_request → admission/dispatch/gather,
    with the replica's nested request subtree hanging off the dispatch."""
    sid = trace_id
    records = [
        _rec("fleet_request", trace_id, f"{sid}-root", start=base, dur=0.1,
             status=status),
        _rec("admission", trace_id, f"{sid}-adm", f"{sid}-root",
             start=base, dur=0.001),
        _rec("dispatch", trace_id, f"{sid}-d0", f"{sid}-root",
             start=base + 0.002, dur=0.05),
        _rec("gather", trace_id, f"{sid}-g", f"{sid}-root",
             start=base + 0.08, dur=0.001),
    ]
    if with_replica:
        records.append(_rec("request", trace_id, f"{sid}-rep", f"{sid}-d0",
                            start=base + 0.003, dur=0.04))
    return records


class TestFleetCompleteness:
    def test_complete_fleet_trace_passes(self):
        check = check_fleet_traces(assemble_traces(_fleet_request("f-0")))
        assert check.ok and check.total == 1 and check.complete == 1

    def test_ok_dispatch_must_hold_the_replica_subtree(self):
        records = _fleet_request("f-0", with_replica=False)
        check = check_fleet_traces(assemble_traces(records))
        (entry,) = check.incomplete
        assert "dispatch_without_replica_request:1" in entry["reasons"]

    def test_failed_dispatch_owes_no_replica_subtree(self):
        # An errored handoff never reached the replica — a missing child
        # subtree is expected, not a broken causal link.
        records = _fleet_request("f-0")
        records.append(_rec("dispatch", "f-0", "f-0-d1", "f-0-root",
                            start=0.06, dur=0.01, status="error"))
        check = check_fleet_traces(assemble_traces(records))
        assert check.ok and check.complete == 1

    def test_shed_fleet_request_only_owes_admission(self):
        records = [
            _rec("fleet_request", "f-s", "fs-root", dur=0.02, status="shed"),
            _rec("admission", "f-s", "fs-adm", "fs-root", dur=0.001),
        ]
        check = check_fleet_traces(assemble_traces(records))
        assert check.ok and check.complete == 1

    def test_answered_fleet_request_missing_gather_fails(self):
        records = [r for r in _fleet_request("f-0") if r["name"] != "gather"]
        check = check_fleet_traces(assemble_traces(records))
        (entry,) = check.incomplete
        assert "missing_stages:gather" in ";".join(entry["reasons"])

    def test_server_traces_counted_as_other(self):
        records = _fleet_request("f-0") + _request("req-0", 5.0)
        check = check_fleet_traces(assemble_traces(records))
        assert check.total == 1 and check.other_traces == 1


class TestBreakdownAndPaths:
    def test_stage_breakdown_reports_percentiles_in_ms(self):
        records = []
        for i in range(10):
            records.extend(_request(f"req-{i}", float(i),
                                    stage_dur=0.01 * (i + 1)))
        breakdown = stage_breakdown(assemble_traces(records))
        predict = breakdown["predict"]
        assert predict["count"] == 10
        assert predict["p50"] == pytest.approx(55.0)  # ms, midpoint
        assert predict["p99"] <= 100.0
        assert set(predict) == {"count", "mean", "p50", "p95", "p99"}

    def test_critical_path_descends_into_the_slowest_child(self):
        records = _request("req-0", 0.0)
        records.append(_rec("engine_replay", "req-0", "rep", "req-0-st",
                            start=0.016, dur=0.02))
        (tree,) = assemble_traces(records).values()
        names = [hop["name"] for hop in critical_path(tree.root)]
        assert names == ["request", "predict", "engine_replay"]

    def test_slowest_request_picks_longest_root(self):
        records = _request("req-a", 0.0) + _request("req-b", 1.0)
        records[4]["end"] = 1.4  # req-b root: 400 ms
        records[4]["duration_ms"] = 400.0
        trees = assemble_traces(records)
        assert slowest_request(trees).trace_id == "req-b"

    def test_render_report_mentions_critical_path(self):
        records = _request("req-0", 0.0)
        trees = assemble_traces(records)
        text = render_report(trees, check_request_traces(trees),
                             stage_breakdown(trees))
        assert "complete: 1/1" in text
        assert "critical path" in text and "queue_wait" in text

    def test_load_spans_filters_mixed_jsonl(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with path.open("w") as fh:
            for record in _request("req-0", 0.0):
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps({"event": "epoch", "loss": 0.1}) + "\n")
        assert len(load_spans(path)) == 4


# ------------------------------------------------------------------ #
# perf-regression sentinel
# ------------------------------------------------------------------ #

_MODELS = ["dcrnn", "agcrn", "gwnet", "pvcgn", "esg", "tgcrn"]


def _bench(seconds, compile_ratio=0.45):
    return {"name": "table8_cost", "data": {
        "seconds_per_epoch": dict(seconds),
        "compile_speedup": {"compiled_over_eager": compile_ratio},
    }}


def _history():
    return _bench({m: 1.0 + 0.1 * i for i, m in enumerate(_MODELS)})


class TestSentinel:
    def test_planted_3x_slowdown_is_the_only_regression(self):
        hist = _history()
        cur_seconds = dict(hist["data"]["seconds_per_epoch"])
        cur_seconds["pvcgn"] *= 3.0
        findings = check_bench_regression(_bench(cur_seconds), hist)
        regressions = [f for f in findings if f.is_regression]
        assert [f.subject for f in regressions] == ["pvcgn"]
        # Normalization eats 3^(1/6) of the raw 3×: ~2.5 stays over 2.0.
        assert regressions[0].ratio == pytest.approx(3.0 / 3.0 ** (1 / 6),
                                                     rel=1e-6)

    def test_uniformly_slower_noisy_machine_passes(self):
        rng_noise = [1.18, 0.85, 1.1, 0.92, 1.2, 0.88]
        hist = _history()
        cur_seconds = {
            m: v * 2.0 * rng_noise[i]  # 2× slower machine, ±20% noise
            for i, (m, v) in enumerate(hist["data"]["seconds_per_epoch"].items())
        }
        findings = check_bench_regression(_bench(cur_seconds), hist)
        assert not any(f.is_regression for f in findings)

    def test_missing_model_surfaces_as_coverage_finding(self):
        hist = _history()
        cur_seconds = dict(hist["data"]["seconds_per_epoch"])
        del cur_seconds["esg"]
        findings = check_bench_regression(_bench(cur_seconds), hist)
        missing = [f for f in findings if f.verdict == "missing"]
        assert [f.subject for f in missing] == ["esg"]
        assert not any(f.is_regression for f in findings)

    def test_compile_ratio_compared_directly(self):
        hist = _history()
        slower = _bench(hist["data"]["seconds_per_epoch"],
                        compile_ratio=0.45 * 1.6)
        findings = check_bench_regression(slower, hist)
        (compile_f,) = [f for f in findings if f.kind == "compile"]
        assert compile_f.is_regression

    def test_single_common_model_falls_back_to_raw_ratio(self):
        hist = _bench({"tgcrn": 1.0})
        cur = _bench({"tgcrn": 2.5})
        findings = check_bench_regression(cur, hist)
        (per_model,) = [f for f in findings if f.kind == "per_model"]
        assert per_model.is_regression
        assert "raw ratio" in per_model.detail

    def test_accepts_bare_data_without_wrapper(self):
        hist = _history()
        findings = check_bench_regression(
            hist["data"], hist["data"], threshold=2.0)
        assert all(f.verdict == "ok" for f in findings)

    def test_render_orders_regressions_first(self):
        hist = _history()
        cur_seconds = dict(hist["data"]["seconds_per_epoch"])
        cur_seconds["gwnet"] *= 4.0
        text = render_regressions(
            check_bench_regression(_bench(cur_seconds), hist))
        first_row = text.splitlines()[1]
        assert first_row.startswith("regression") and "gwnet" in first_row
        assert "1 regression(s)" in text
        assert render_regressions([]) == "bench sentinel: nothing to compare"


class TestObsReportCli:
    def test_spans_mode_gates_on_incomplete(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.jsonl"
        with good.open("w") as fh:
            for record in _request("req-0", 0.0):
                fh.write(json.dumps(record) + "\n")
        out = tmp_path / "report.json"
        assert main(["obs-report", "--spans", str(good), "--out", str(out),
                     "--fail-on", "incomplete", "--quiet"]) == 0
        payload = json.loads(out.read_text())
        assert payload["spans"]["check"]["ok"] is True
        assert "request" in payload["spans"]["stages"]
        assert payload["spans"]["critical_path"][0]["name"] == "request"

        bad = tmp_path / "bad.jsonl"
        with bad.open("w") as fh:
            for record in _request("req-0", 0.0):
                if record["name"] != "queue_wait":
                    fh.write(json.dumps(record) + "\n")
        assert main(["obs-report", "--spans", str(bad),
                     "--fail-on", "incomplete", "--quiet"]) == 1
        assert main(["obs-report", "--spans", str(bad),
                     "--fail-on", "never", "--quiet"]) == 0

    def test_bench_mode_gates_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        hist = _history()
        cur_seconds = dict(hist["data"]["seconds_per_epoch"])
        cur_seconds["dcrnn"] *= 3.0
        hist_path = tmp_path / "hist.json"
        cur_path = tmp_path / "cur.json"
        hist_path.write_text(json.dumps(hist))
        cur_path.write_text(json.dumps(_bench(cur_seconds)))

        assert main(["obs-report", "--bench-current", str(cur_path),
                     "--bench-history", str(hist_path),
                     "--fail-on", "regression", "--quiet"]) == 1
        cur_path.write_text(json.dumps(hist))  # unmodified rerun
        assert main(["obs-report", "--bench-current", str(cur_path),
                     "--bench-history", str(hist_path),
                     "--fail-on", "regression", "--quiet"]) == 0
