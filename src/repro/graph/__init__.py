"""Graph substrate: normalizations, pre-defined builders, poly supports."""

from .adjacency import (
    normalize,
    random_walk,
    random_walk_np,
    row_softmax,
    sym_laplacian,
    sym_laplacian_np,
)
from .builders import (
    correlation_graph,
    distance_graph,
    graph_diameter,
    knn_graph,
    line_graph,
    ring_line_edges,
)
from .cheb import chebyshev_supports, diffusion_supports

__all__ = [
    "chebyshev_supports",
    "correlation_graph",
    "diffusion_supports",
    "distance_graph",
    "graph_diameter",
    "knn_graph",
    "line_graph",
    "normalize",
    "random_walk",
    "random_walk_np",
    "ring_line_edges",
    "row_softmax",
    "sym_laplacian",
    "sym_laplacian_np",
]
