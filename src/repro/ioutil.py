"""Atomic file-write primitives shared by every persistence layer.

A half-written ``.npz`` is worse than no file at all: ``np.load`` fails
with an opaque zipfile error, or — nastier — loads a stale central
directory and silently returns old arrays.  Everything that persists
training artifacts (dataset caches, model checkpoints, optimizer state,
training-state checkpoints) therefore writes through :func:`atomic_write`:
the payload lands in a same-directory temp file first, is flushed to
stable storage with ``os.fsync``, and is moved into place with
``os.replace`` — with the parent directory fsynced around the rename so
the new directory entry is durable too.  An interrupt (SIGKILL, power
loss, full disk) can lose the *new* artifact but can never corrupt or
truncate the *existing* one, and a file that ``os.replace`` committed
can never come back zero-length after a power cut.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np


def _fsync_file(path: Path) -> None:
    """Push a file's contents to stable storage (data durability)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """Push a directory entry to stable storage (rename durability).

    Some filesystems (and non-POSIX platforms) refuse fsync on a
    directory fd; that only weakens durability, not atomicity, so the
    failure is swallowed.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # analyze: allow[RL006] directory fsync is best-effort (see docstring)
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a temp path that replaces ``path`` only on successful exit.

    The temp file lives next to the destination (same filesystem, so the
    final ``os.replace`` is a metadata-only rename).  On any exception the
    temp file is removed and the original destination is left untouched.

    Durability, not just atomicity: the temp file is fsynced before the
    rename (so the committed file can never be empty or partial after a
    power loss) and the parent directory is fsynced before and after it
    (so both the temp entry and the renamed entry survive a crash of the
    filesystem journal).
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        _fsync_file(tmp)
        _fsync_dir(path.parent)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_savez(path: str | Path, arrays: dict) -> Path:
    """``np.savez`` through :func:`atomic_write`; returns the final path.

    Mirrors ``np.savez``'s name handling (a ``.npz`` suffix is appended
    when missing) but, unlike calling it on a filename directly, never
    leaves a partially written archive behind.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write a text file atomically (same temp + ``os.replace`` discipline)."""
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_text(text)
    return path
