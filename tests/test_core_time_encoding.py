"""Tests for the three time encoders (§III-A-2, Table VII ablations)."""

import numpy as np
import pytest

from repro.autodiff import check_gradients
from repro.core import (
    ContinuousTimeRepresentation,
    DiscreteTimeEmbedding,
    Time2Vec,
    make_time_encoder,
)


class TestDiscreteTimeEmbedding:
    def test_shape(self, rng):
        enc = DiscreteTimeEmbedding(24, 8, rng=rng)
        assert enc(np.array([0, 5, 23])).shape == (3, 8)
        assert enc(np.array([[0, 1], [2, 3]])).shape == (2, 2, 8)

    def test_wraps_modulo_period(self, rng):
        enc = DiscreteTimeEmbedding(24, 8, rng=rng)
        np.testing.assert_allclose(enc(np.array([25])).data, enc(np.array([1])).data)
        np.testing.assert_allclose(enc(np.array([-1])).data, enc(np.array([23])).data)

    def test_table_shape(self, rng):
        enc = DiscreteTimeEmbedding(24, 8, rng=rng)
        assert enc.table().shape == (24, 8)

    def test_needs_two_slots(self, rng):
        with pytest.raises(ValueError):
            DiscreteTimeEmbedding(1, 8, rng=rng)

    def test_gradient_reaches_table(self, rng):
        enc = DiscreteTimeEmbedding(10, 4, rng=rng)
        check_gradients(lambda: enc(np.array([1, 1, 7])).tanh().sum(), [enc.weight], rtol=1e-3)


class TestTime2Vec:
    def test_shape(self, rng):
        enc = Time2Vec(24, 8, rng=rng)
        assert enc(np.array([0, 10])).shape == (2, 8)

    def test_first_component_linear_in_time(self, rng):
        enc = Time2Vec(24, 4, rng=rng)
        t = np.array([0, 1, 2, 3])
        first = enc(t).data[:, 0]
        diffs = np.diff(first)
        np.testing.assert_allclose(diffs, diffs[0], atol=1e-9)

    def test_periodic_components_bounded(self, rng):
        enc = Time2Vec(24, 8, rng=rng)
        out = enc(np.arange(100)).data[:, 1:]
        assert (np.abs(out) <= 1.0 + 1e-9).all()

    def test_min_dim(self, rng):
        with pytest.raises(ValueError):
            Time2Vec(24, 1, rng=rng)

    def test_gradients(self, rng):
        enc = Time2Vec(24, 4, rng=rng)
        check_gradients(
            lambda: enc(np.array([3, 9])).sum(), [enc.omega, enc.phi], rtol=1e-3, atol=1e-5
        )


class TestCTR:
    def test_shape_and_scale(self, rng):
        enc = ContinuousTimeRepresentation(24, 16, rng=rng)
        out = enc(np.array([0, 5])).data
        assert out.shape == (2, 16)
        assert (np.abs(out) <= 1.0 / np.sqrt(16) + 1e-9).all()

    def test_gradients(self, rng):
        enc = ContinuousTimeRepresentation(24, 4, rng=rng)
        check_gradients(lambda: enc(np.array([3, 9])).sum(), [enc.omega], rtol=1e-3, atol=1e-5)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [("embedding", DiscreteTimeEmbedding), ("time2vec", Time2Vec), ("ctr", ContinuousTimeRepresentation)],
    )
    def test_kinds(self, kind, cls, rng):
        enc = make_time_encoder(kind, 24, 8, rng=rng)
        assert isinstance(enc, cls)
        assert enc.dim == 8
        assert enc.num_slots == 24

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            make_time_encoder("fourier", 24, 8, rng=rng)
