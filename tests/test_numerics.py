"""Numerical-behavior tests: optimizer math, positional encodings, and
stability under extreme values."""

import numpy as np
import pytest

from repro.autodiff import Tensor, softmax
from repro.nn import Adam, Parameter


class TestAdamMath:
    def test_first_step_is_signed_lr(self):
        """After bias correction, Adam's first update is
        lr * g / (|g| + eps) ≈ lr * sign(g)."""
        w = Parameter(np.array([1.0, -2.0, 3.0]))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([5.0, -0.01, 2.0])
        before = w.data.copy()
        opt.step()
        update = before - w.data
        np.testing.assert_allclose(update, 0.1 * np.sign(w.grad), rtol=1e-4)

    def test_step_count_advances(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=0.1)
        w.grad = np.ones(1)
        opt.step()
        opt.step()
        assert opt._step_count == 2

    def test_l2_penalty_pulls_toward_zero_with_zero_grad(self):
        w = Parameter(np.array([10.0]))
        opt = Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 10.0


class TestPositionalEncoding:
    def test_even_dim(self):
        from repro.baselines.transformers import _positional_encoding

        table = _positional_encoding(10, 8)
        assert table.shape == (10, 8)
        np.testing.assert_allclose(table[0, 0::2], 0.0)  # sin(0)
        np.testing.assert_allclose(table[0, 1::2], 1.0)  # cos(0)

    def test_odd_dim(self):
        from repro.baselines.transformers import _positional_encoding

        table = _positional_encoding(5, 7)
        assert table.shape == (5, 7)
        assert np.isfinite(table).all()

    def test_positions_distinguishable(self):
        from repro.baselines.transformers import _positional_encoding

        table = _positional_encoding(20, 16)
        for i in range(19):
            assert not np.allclose(table[i], table[i + 1])


class TestStability:
    def test_softmax_huge_spread(self):
        x = Tensor(np.array([[1e8, -1e8, 0.0]]))
        out = softmax(x).data
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_sigmoid_saturation_gradients_finite(self):
        x = Tensor(np.array([700.0, -700.0]), requires_grad=True)
        x.sigmoid().sum().backward()
        assert np.isfinite(x.grad).all()

    def test_log_of_tiny_values(self):
        x = Tensor(np.array([1e-300]), requires_grad=True)
        out = x.log()
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_graph_normalization_of_zero_matrix(self):
        from repro.graph import random_walk, sym_laplacian

        zero = Tensor(np.zeros((4, 4)))
        assert np.isfinite(random_walk(zero).data).all()
        assert np.isfinite(sym_laplacian(zero, add_self_loops=False).data).all()

    def test_scaler_with_extreme_magnitudes(self):
        from repro.data import StandardScaler

        values = np.array([[[1e12]], [[1e12 + 1e6]]])
        scaler = StandardScaler().fit(values)
        restored = scaler.inverse_transform(scaler.transform(values))
        np.testing.assert_allclose(restored, values, rtol=1e-9)
