"""Every registry baseline must build from a task and run a forward pass."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import ALL_BASELINES, NEURAL_BASELINES, build_baseline


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_registry_builds_and_runs(name, tiny_task):
    model = build_baseline(name, tiny_task, hidden_dim=8, num_layers=1, seed=0)
    if name in NEURAL_BASELINES:
        x, y, t = next(iter(tiny_task.loader("val", 2)))
        out = model(Tensor(x), t)
        assert out.shape == y.shape
        assert np.isfinite(out.data).all()
    else:
        prediction, target = model.evaluate(tiny_task, "val")
        assert prediction.shape == target.shape
        assert np.isfinite(prediction).all()


def test_registry_seed_controls_initialization(tiny_task):
    a = build_baseline("agcrn", tiny_task, hidden_dim=8, seed=0)
    b = build_baseline("agcrn", tiny_task, hidden_dim=8, seed=0)
    c = build_baseline("agcrn", tiny_task, hidden_dim=8, seed=1)
    np.testing.assert_allclose(a.node_embedding.data, b.node_embedding.data)
    assert not np.allclose(a.node_embedding.data, c.node_embedding.data)


def test_all_baselines_have_distinct_architectures(tiny_task):
    """Parameter counts should differ across (most) neural baselines —
    a cheap guard against registry wiring mistakes."""
    counts = {}
    for name in NEURAL_BASELINES:
        model = build_baseline(name, tiny_task, hidden_dim=8, num_layers=1)
        counts[name] = model.num_parameters()
    assert len(set(counts.values())) >= len(counts) - 1, counts
