"""Tests for the gradient-flow linter (repro.analyze.gradflow).

A parameter the loss can never reach is a silent bug: it trains to
nothing while the architecture diagram says otherwise.  The linter must
flag dead parameters (GF001), parameters severed by ``detach`` (GF002),
and doubly-registered shared parameters (GF003) — and must pass the real
TGCRN, whose every parameter is reachable.
"""

import numpy as np

from repro.analyze import lint_gradient_flow
from repro.core import TGCRN
from repro.nn import Linear, Module, Parameter

DIMS = dict(history=4, horizon=3, num_nodes=5, in_dim=2, out_dim=2)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _horizon_stack(frame):
    from repro.autodiff import stack

    return stack([frame] * DIMS["horizon"], axis=1)


class TestDeadParameter:
    def test_unused_parameter_is_gf001(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.orphan = Parameter(np.zeros(3))  # registered, never used

            def forward(self, x, t):
                return _horizon_stack(self.proj(x[:, -1]))

        findings = lint_gradient_flow(Bad(), **DIMS)
        gf001 = [f for f in findings if f.rule_id == "GF001"]
        assert gf001 and all(f.severity == "error" for f in gf001)
        assert any("orphan" in f.location for f in gf001)

    def test_tgcrn_has_no_dead_parameters(self):
        model = TGCRN(
            num_nodes=DIMS["num_nodes"], in_dim=DIMS["in_dim"], out_dim=DIMS["out_dim"],
            horizon=DIMS["horizon"], hidden_dim=6, num_layers=2, node_dim=4, time_dim=4,
            steps_per_day=24, rng=np.random.default_rng(0),
        )
        findings = lint_gradient_flow(model, model_name="tgcrn", **DIMS)
        assert not any(f.rule_id in ("GF001", "GF002") for f in findings), \
            [str(f.to_dict()) for f in findings]


class TestDetachedParameter:
    def test_detach_only_usage_is_gf002(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.scale = Parameter(np.ones(DIMS["out_dim"]))

            def forward(self, x, t):
                # scale reaches the output only through detach: it can
                # never receive a gradient, yet it IS "used".
                return _horizon_stack(self.proj(x[:, -1]) * self.scale.detach())

        findings = lint_gradient_flow(Bad(), **DIMS)
        gf002 = [f for f in findings if f.rule_id == "GF002"]
        assert gf002 and all(f.severity == "error" for f in gf002)
        assert any("scale" in f.location for f in gf002)

    def test_detach_chain_through_real_ops_is_gf002_not_gf001(self, rng):
        class Chained(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.gain = Parameter(np.ones(DIMS["out_dim"]))

            def forward(self, x, t):
                # The detached value goes through further *real-side*
                # arithmetic before mixing into the symbolic graph.
                # Those ops drop their autodiff ancestry (no operand
                # requires grad), so only severed-set propagation can
                # see that `gain` fed this path: GF002, never GF001.
                warped = self.gain.detach() * 2.0 + 1.0
                return _horizon_stack(self.proj(x[:, -1]) * warped)

        findings = lint_gradient_flow(Chained(), **DIMS)
        gf002 = [f for f in findings if f.rule_id == "GF002"]
        assert any("gain" in f.location for f in gf002), \
            [str(f.to_dict()) for f in findings]
        assert not any(f.rule_id == "GF001" for f in findings)

    def test_detach_plus_live_path_is_clean(self, rng):
        class Fine(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.scale = Parameter(np.ones(DIMS["out_dim"]))

            def forward(self, x, t):
                frame = self.proj(x[:, -1]) * self.scale
                return _horizon_stack(frame + 0.0 * self.scale.detach())

        findings = lint_gradient_flow(Fine(), **DIMS)
        assert not any(f.rule_id in ("GF001", "GF002") for f in findings)


class TestSharedRegistration:
    def test_double_registration_is_gf003_info(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.alias = self.proj  # same module under two names

            def forward(self, x, t):
                return _horizon_stack(self.alias(x[:, -1]))

        findings = lint_gradient_flow(Shared(), **DIMS)
        gf003 = [f for f in findings if f.rule_id == "GF003"]
        assert gf003 and all(f.severity == "info" for f in gf003)
        assert any("alias" in f.message and "proj" in f.message for f in gf003)

    def test_tgcrn_time_encoder_sharing_is_reported(self):
        """The real catalog case the committed baseline accepts: TGCRN
        registers its time encoder both directly and inside TagSL."""
        model = TGCRN(
            num_nodes=DIMS["num_nodes"], in_dim=DIMS["in_dim"], out_dim=DIMS["out_dim"],
            horizon=DIMS["horizon"], hidden_dim=6, num_layers=1, node_dim=4, time_dim=4,
            steps_per_day=24, rng=np.random.default_rng(0),
        )
        findings = lint_gradient_flow(model, model_name="tgcrn", **DIMS)
        gf003 = [f for f in findings if f.rule_id == "GF003"]
        assert any("time_encoder" in f.location for f in gf003)


class TestUncheckableModel:
    def test_symbolic_failure_degrades_to_gf004_warning(self):
        class Opaque(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones(3))

            def forward(self, x, t):
                raise RuntimeError("cannot run on abstract input")

        findings = lint_gradient_flow(Opaque(), **DIMS)
        assert _rule_ids(findings) == {"GF004"}
        assert all(f.severity == "warning" for f in findings)
