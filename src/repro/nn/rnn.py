"""Recurrent cells and multi-step wrappers (GRU / LSTM).

These are the temporal backbone for FC-LSTM and for baselines whose graph
modules are grafted onto a recurrent skeleton.  Inputs follow the
``(batch, time, features)`` convention.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, stack, zeros
from . import init
from .module import Module, ModuleList, Parameter


class GRUCell(Module):
    """Standard gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        combined = input_size + hidden_size
        self.weight_z = Parameter(init.xavier_uniform((combined, hidden_size), rng))
        self.weight_r = Parameter(init.xavier_uniform((combined, hidden_size), rng))
        self.weight_h = Parameter(init.xavier_uniform((combined, hidden_size), rng))
        self.bias_z = Parameter(init.zeros((hidden_size,)))
        self.bias_r = Parameter(init.zeros((hidden_size,)))
        self.bias_h = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=-1)
        z = (xh @ self.weight_z + self.bias_z).sigmoid()
        r = (xh @ self.weight_r + self.bias_r).sigmoid()
        xrh = concat([x, r * h], axis=-1)
        candidate = (xrh @ self.weight_h + self.bias_h).tanh()
        return (1.0 - z) * h + z * candidate


class LSTMCell(Module):
    """Standard LSTM cell with forget-gate bias initialized to 1."""

    def __init__(self, input_size: int, hidden_size: int, *, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        combined = input_size + hidden_size
        self.weight = Parameter(init.xavier_uniform((combined, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = concat([x, h], axis=-1) @ self.weight + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRU(Module):
    """Multi-layer GRU over a (batch, time, features) sequence."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        sizes = [input_size] + [hidden_size] * (num_layers - 1)
        self.cells = ModuleList([GRUCell(s, hidden_size, rng=rng) for s in sizes])

    def forward(self, x: Tensor, h0: list[Tensor] | None = None) -> tuple[Tensor, list[Tensor]]:
        batch, steps, _ = x.shape
        states = h0 or [zeros(batch, self.hidden_size) for _ in range(self.num_layers)]
        outputs = []
        for t in range(steps):
            layer_input = x[:, t, :]
            new_states = []
            for cell, state in zip(self.cells, states):
                layer_input = cell(layer_input, state)
                new_states.append(layer_input)
            states = new_states
            outputs.append(states[-1])
        return stack(outputs, axis=1), states


class LSTM(Module):
    """Multi-layer LSTM over a (batch, time, features) sequence."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        sizes = [input_size] + [hidden_size] * (num_layers - 1)
        self.cells = ModuleList([LSTMCell(s, hidden_size, rng=rng) for s in sizes])

    def _initial_states(self, batch: int) -> list[tuple[Tensor, Tensor]]:
        return [
            (zeros(batch, self.hidden_size), zeros(batch, self.hidden_size))
            for _ in range(self.num_layers)
        ]

    def forward(
        self, x: Tensor, states: list[tuple[Tensor, Tensor]] | None = None
    ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        batch, steps, _ = x.shape
        states = states or self._initial_states(batch)
        outputs = []
        for t in range(steps):
            layer_input = x[:, t, :]
            new_states = []
            for cell, state in zip(self.cells, states):
                h, c = cell(layer_input, state)
                layer_input = h
                new_states.append((h, c))
            states = new_states
            outputs.append(states[-1][0])
        return stack(outputs, axis=1), states
