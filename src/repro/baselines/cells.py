"""Shared recurrent graph-convolution machinery for the baselines.

DCRNN, PVCGN, GTS, CCRNN, and ESG all wrap a GRU whose gates apply some
form of graph convolution; they differ only in where the adjacency comes
from (pre-defined, multi-graph, sampled, layer-wise learned, evolving).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..nn import Module, ModuleList, Parameter, init


class SupportGraphConv(Module):
    """y = Σ_k S_k x W_k + b with *fixed* numpy supports (DCRNN-style).

    Weights are shared across nodes; supports are constants so gradients
    only flow through the features.
    """

    def __init__(self, supports: list[np.ndarray], in_dim: int, out_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self._supports = [Tensor(s) for s in supports]
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(init.xavier_uniform(((len(supports) + 1) * in_dim, out_dim), rng))
        self.bias = Parameter(init.zeros((out_dim,)))

    def forward(self, x: Tensor) -> Tensor:
        """x: (B, N, C_in) -> (B, N, C_out); includes the identity hop."""
        terms = [x] + [support @ x for support in self._supports]
        return concat(terms, axis=-1) @ self.weight + self.bias


class DynamicGraphConv(Module):
    """y = Σ_k A^k x W_k + b where A is supplied per forward call.

    ``hops`` counts powers of the (batch of) adjacency applied, plus the
    identity term.
    """

    def __init__(self, in_dim: int, out_dim: int, hops: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.hops = hops
        self.weight = Parameter(init.xavier_uniform(((hops + 1) * in_dim, out_dim), rng))
        self.bias = Parameter(init.zeros((out_dim,)))

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        terms = [x]
        for _ in range(self.hops):
            terms.append(adjacency @ terms[-1])
        return concat(terms, axis=-1) @ self.weight + self.bias


class FixedGraphGRUCell(Module):
    """GRU cell whose gates convolve over fixed supports."""

    def __init__(self, supports: list[np.ndarray], in_dim: int, hidden_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_conv = SupportGraphConv(supports, in_dim + hidden_dim, 2 * hidden_dim, rng=rng)
        self.candidate_conv = SupportGraphConv(supports, in_dim + hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates = self.gate_conv(concat([x, h], axis=-1)).sigmoid()
        z = gates[:, :, : self.hidden_dim]
        r = gates[:, :, self.hidden_dim :]
        candidate = self.candidate_conv(concat([x, r * h], axis=-1)).tanh()
        return (1.0 - z) * h + z * candidate


class DynamicGraphGRUCell(Module):
    """GRU cell whose gates convolve over a per-step adjacency batch."""

    def __init__(self, in_dim: int, hidden_dim: int, hops: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_conv = DynamicGraphConv(in_dim + hidden_dim, 2 * hidden_dim, hops, rng=rng)
        self.candidate_conv = DynamicGraphConv(in_dim + hidden_dim, hidden_dim, hops, rng=rng)

    def forward(self, x: Tensor, h: Tensor, adjacency: Tensor) -> Tensor:
        gates = self.gate_conv(concat([x, h], axis=-1), adjacency).sigmoid()
        z = gates[:, :, : self.hidden_dim]
        r = gates[:, :, self.hidden_dim :]
        candidate = self.candidate_conv(concat([x, r * h], axis=-1), adjacency).tanh()
        return (1.0 - z) * h + z * candidate


class MultiGraphGRUCell(Module):
    """GRU cell summing convolutions over several fixed graphs (PVCGN).

    Each graph contributes its own :class:`SupportGraphConv`; gate
    pre-activations are summed before the nonlinearity, which is the
    collaboration mechanism of physical-virtual graph fusion.
    """

    def __init__(
        self, graphs: list[list[np.ndarray]], in_dim: int, hidden_dim: int, *, rng: np.random.Generator
    ):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_convs = ModuleList(
            [SupportGraphConv(g, in_dim + hidden_dim, 2 * hidden_dim, rng=rng) for g in graphs]
        )
        self.candidate_convs = ModuleList(
            [SupportGraphConv(g, in_dim + hidden_dim, hidden_dim, rng=rng) for g in graphs]
        )

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=-1)
        gate_sum = None
        for conv in self.gate_convs:
            term = conv(xh)
            gate_sum = term if gate_sum is None else gate_sum + term
        gates = gate_sum.sigmoid()
        z = gates[:, :, : self.hidden_dim]
        r = gates[:, :, self.hidden_dim :]
        xrh = concat([x, r * h], axis=-1)
        cand_sum = None
        for conv in self.candidate_convs:
            term = conv(xrh)
            cand_sum = term if cand_sum is None else cand_sum + term
        candidate = cand_sum.tanh()
        return (1.0 - z) * h + z * candidate
