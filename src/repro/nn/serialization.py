"""Checkpoint save/load for modules and full training state.

State dicts serialize to ``.npz`` (no pickle of code objects — safe to
share).  Optimizer state captures Adam's moments so training resumes
exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module
from .optim import Adam

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(path: str | Path, model: Module, metadata: dict | None = None) -> None:
    """Write a model's parameters (and JSON-safe metadata) to ``.npz``."""
    path = Path(path)
    arrays = dict(model.state_dict())
    if any(name == _META_KEY for name in arrays):
        raise ValueError(f"parameter name {_META_KEY!r} collides with metadata slot")
    meta = json.dumps(metadata or {})
    arrays[_META_KEY] = np.frombuffer(meta.encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(path: str | Path, model: Module) -> dict:
    """Load parameters into ``model`` in place; returns the metadata."""
    path = Path(path)
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta_blob = arrays.pop(_META_KEY, None)
    model.load_state_dict(arrays)
    if meta_blob is None:
        return {}
    return json.loads(bytes(meta_blob.tobytes()).decode())


def save_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Persist Adam moments + step count for exact training resumption."""
    arrays = {"step_count": np.array(optimizer._step_count), "lr": np.array(optimizer.lr)}
    for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        arrays[f"m_{i}"] = m
        arrays[f"v_{i}"] = v
    np.savez(Path(path), **arrays)


def load_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Restore Adam moments saved by :func:`save_optimizer`."""
    with np.load(Path(path)) as archive:
        optimizer._step_count = int(archive["step_count"])
        optimizer.lr = float(archive["lr"])
        for i in range(len(optimizer._m)):
            saved_m, saved_v = archive[f"m_{i}"], archive[f"v_{i}"]
            if saved_m.shape != optimizer._m[i].shape:
                raise ValueError(
                    f"optimizer slot {i}: shape {saved_m.shape} != {optimizer._m[i].shape}"
                )
            optimizer._m[i][...] = saved_m
            optimizer._v[i][...] = saved_v
