"""Datasets: synthetic generators, windowing, scaling, batching."""

from .synthetic import (
    ElectricityGenerator,
    SpatioTemporalGenerator,
    SyntheticConfig,
    SyntheticDataset,
)
from .scalers import IdentityScaler, MinMaxScaler, StandardScaler
from .windows import WindowSet, chronological_split, make_windows, split_series_by_steps
from .loader import DataLoader
from .datasets import SPECS, DatasetSpec, ForecastingTask, load_task
from .io import export_csv, load_dataset, save_dataset
from .augmentation import AugmentationConfig, WindowAugmenter
from .real import load_electricity_txt, load_metro_pickles, load_raw_series, task_from_series

__all__ = [
    "AugmentationConfig",
    "DataLoader",
    "DatasetSpec",
    "ElectricityGenerator",
    "ForecastingTask",
    "IdentityScaler",
    "MinMaxScaler",
    "SPECS",
    "SpatioTemporalGenerator",
    "StandardScaler",
    "SyntheticConfig",
    "SyntheticDataset",
    "WindowAugmenter",
    "WindowSet",
    "chronological_split",
    "export_csv",
    "load_electricity_txt",
    "load_metro_pickles",
    "load_raw_series",
    "load_dataset",
    "save_dataset",
    "task_from_series",
    "load_task",
    "make_windows",
    "split_series_by_steps",
]
