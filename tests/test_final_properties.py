"""Last property tranche: t-SNE calibration, trend wraparound, summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import joint_probabilities


class TestPerplexityCalibration:
    @pytest.mark.parametrize("perplexity", [3.0, 8.0])
    def test_conditional_entropy_matches_target(self, rng, perplexity):
        """Each row's conditional distribution should have entropy
        ≈ log(perplexity) after the bisection search."""
        x = rng.normal(size=(30, 5))
        from repro.viz.tsne import _conditional_probabilities, _pairwise_sq_distances

        d2 = _pairwise_sq_distances(x)
        target = np.log(perplexity)
        # redo the calibration for row 0 the way joint_probabilities does
        row = np.delete(d2[0], 0)
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        for _ in range(64):
            p, entropy = _conditional_probabilities(row, beta)
            diff = entropy - target
            if abs(diff) < 1e-5:
                break
            if diff > 0:
                beta_min = beta
                beta = beta * 2 if beta_max == np.inf else 0.5 * (beta + beta_max)
            else:
                beta_max = beta
                beta = 0.5 * (beta + beta_min)
        assert entropy == pytest.approx(target, abs=1e-3)

    def test_joint_probabilities_perplexity_effect(self, rng):
        """Higher perplexity spreads probability mass further out."""
        x = rng.normal(size=(25, 4))
        narrow = joint_probabilities(x, perplexity=2.0)
        wide = joint_probabilities(x, perplexity=8.0)
        # entropy of the full joint grows with perplexity
        h_narrow = -np.sum(narrow * np.log(narrow))
        h_wide = -np.sum(wide * np.log(wide))
        assert h_wide > h_narrow


@given(
    t=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=30, deadline=None)
def test_trend_factor_day_periodic(t, seed):
    """η(t) = η(t + |T|): the trend factor inherits the table's period."""
    from repro.core import DiscreteTimeEmbedding, TagSL

    rng = np.random.default_rng(seed)
    enc = DiscreteTimeEmbedding(24, 3, rng=rng)
    tagsl = TagSL(4, 4, enc, rng=rng)
    a = tagsl.trend_factor(np.array([t])).data
    b = tagsl.trend_factor(np.array([t + 24])).data
    np.testing.assert_allclose(a, b)


class TestModuleSummary:
    def test_summary_totals_match(self, rng):
        from repro.core import TGCRN

        model = TGCRN(num_nodes=4, in_dim=2, out_dim=2, horizon=2, hidden_dim=6,
                      num_layers=1, node_dim=4, time_dim=4, steps_per_day=24, rng=rng)
        summary = model.summary()
        assert f"{model.num_parameters():,d}" in summary
        assert "total" in summary
        # group sums must add to the total
        lines = [l for l in summary.splitlines() if not l.startswith("-")][1:-1]
        counts = [int(l.split()[-1].replace(",", "")) for l in lines]
        assert sum(counts) == model.num_parameters()

    def test_summary_depth_controls_grouping(self, rng):
        from repro.core import TGCRN

        model = TGCRN(num_nodes=4, in_dim=2, out_dim=2, horizon=2, hidden_dim=6,
                      num_layers=2, node_dim=4, time_dim=4, steps_per_day=24, rng=rng)
        shallow = model.summary(max_depth=1)
        deep = model.summary(max_depth=3)
        assert len(deep.splitlines()) > len(shallow.splitlines())
