"""Guard-rail tests for the execution engine: wrong plans must never
produce wrong numbers.

Each scenario perturbs something the captured plan depends on — batch
shape, index dtype, parameter identity, the forward op sequence, or a
chaos wrapper flipping behaviour mid-stream — and asserts the engine
either routes to a separate plan (signature change) or falls back to
eager with a structured ``plan_invalidated`` record (guard trip).  In
every case the numbers must match an eager twin bitwise.
"""

import json

import numpy as np
import pytest

from tests.test_baselines_neural import _IN, _NODES, _OUT, _P, _Q, _build

from repro.autodiff import Tensor, mae_loss, no_grad
from repro.autodiff.engine import CompiledModel, ExecutionEngine, discover_rngs
from repro.obs import RunLogger
from repro.serve.chaos import NaNModel
from repro.verify import named_rng


def _twins():
    """Two fclstm models with bitwise-identical parameters."""
    return (_build("fclstm", named_rng(0, "engine-guards")),
            _build("fclstm", named_rng(0, "engine-guards")))


def _batch(batch, seed=0, offset=0, t_dtype=np.int64):
    rng = named_rng(seed, f"engine-guards-batch-{batch}-{offset}")
    x = rng.normal(size=(batch, _P, _NODES, _IN))
    y = rng.normal(scale=0.3, size=(batch, _Q, _NODES, _OUT))
    t = (np.arange(_P + _Q)[None, :].repeat(batch, axis=0) + offset).astype(t_dtype)
    return x, y, t


def _step_of(model):
    def step(x_t, y_t, t):
        loss = mae_loss(model(x_t, t), y_t)
        loss.backward()
        return loss
    return step


def _assert_twin_step(eager, compiled, engine, batch_args, where):
    """Run one training step on both twins; grads and loss must match."""
    step_e, step_c = _step_of(eager), _step_of(compiled)
    x, y, t = batch_args
    eager.zero_grad()
    compiled.zero_grad()
    loss_e = step_e(Tensor(x), Tensor(y), t)
    loss_c = engine.run(step_c, Tensor(x), Tensor(y), t)
    assert loss_e.item() == loss_c.item(), f"{where}: loss diverged"
    for (n, p_e), (_, p_c) in zip(eager.named_parameters(),
                                  compiled.named_parameters()):
        assert np.array_equal(np.asarray(p_e.grad), np.asarray(p_c.grad)), \
            f"{where}: grad diverged for {n}"


class TestSignatureChanges:
    """Shape/dtype changes are *signatures*, not faults: each gets its
    own plan and nothing ever falls back or goes wrong."""

    def test_changed_batch_shape_captures_second_plan(self):
        eager, compiled = _twins()
        eager.train(True), compiled.train(True)
        engine = ExecutionEngine("guards:shape", rngs=discover_rngs(compiled))
        for batch, repeat in ((3, 2), (2, 2)):
            for i in range(repeat):
                _assert_twin_step(eager, compiled, engine,
                                  _batch(batch, offset=i), f"batch={batch} rep={i}")
        stats = engine.stats
        assert stats["captures"] == 2, stats
        assert stats["replays"] == 2, stats
        assert stats["eager_steps"] == 0 and stats["invalidations"] == 0, stats

    def test_dtype_switch_captures_second_plan(self):
        eager, compiled = _twins()
        eager.train(True), compiled.train(True)
        engine = ExecutionEngine("guards:dtype", rngs=discover_rngs(compiled))
        for dtype in (np.int64, np.int32, np.int64):
            _assert_twin_step(eager, compiled, engine,
                              _batch(3, t_dtype=dtype), f"t dtype={dtype}")
        stats = engine.stats
        # int64 / int32 time indices are distinct signatures; the third
        # step replays the first plan rather than re-capturing.
        assert stats["captures"] == 2, stats
        assert stats["replays"] == 1, stats
        assert stats["eager_steps"] == 0 and stats["invalidations"] == 0, stats


class TestGuardTrips:
    """Mutations the signature can't see trip replay guards: the step
    falls back to eager (correct numbers), the invalidation is logged,
    and a persistently failing plan is demoted to eager-only."""

    def test_parameter_rebinding_falls_back_and_demotes(self, tmp_path):
        eager, compiled = _twins()
        eager.train(True), compiled.train(True)
        log_path = tmp_path / "run.jsonl"
        logger = RunLogger(log_path)
        engine = ExecutionEngine("guards:rebind", logger, max_failures=2,
                                 rngs=discover_rngs(compiled))

        _assert_twin_step(eager, compiled, engine, _batch(3), "capture")
        assert engine.stats["captures"] == 1

        # Rebind one parameter's storage on both twins — same values, new
        # buffer.  Eager mode doesn't care; the plan's kernels are bound
        # to the old buffer, so replay must refuse to run.
        for model in (eager, compiled):
            param = next(p for _, p in model.named_parameters())
            param.data = param.data.copy()

        for i in range(3):
            _assert_twin_step(eager, compiled, engine,
                              _batch(3, offset=i + 1), f"post-rebind {i}")

        stats = engine.stats
        assert stats["replays"] == 0, stats
        assert stats["invalidations"] == 2, stats   # demoted after max_failures
        assert stats["eager_steps"] == 3, stats     # every post-rebind step
        (plan,) = engine.describe()["plans"]
        assert plan["eager_only"] is True
        assert plan["reason"] == "operand_mismatch"

        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        invalidated = [e for e in events if e["event"] == "plan_invalidated"]
        assert len(invalidated) == 2
        assert all(e["phase"] == "replay" for e in invalidated)
        assert all(e["reason"] == "operand_mismatch" for e in invalidated)
        assert sum(e["event"] == "plan_demoted" for e in events) == 1

    def test_mutated_forward_sequence_falls_back(self):
        class Rescaled:
            """Stand-in for a model whose forward changes after capture."""

            def __init__(self, inner):
                self.inner = inner
                self.rescale = False

            def __call__(self, x, t):
                out = self.inner(x, t)
                return out * 2.0 if self.rescale else out

            def named_parameters(self, prefix=""):
                return self.inner.named_parameters(prefix)

            def zero_grad(self):
                self.inner.zero_grad()

        inner_e, inner_c = _twins()
        inner_e.train(True), inner_c.train(True)
        eager, compiled = Rescaled(inner_e), Rescaled(inner_c)
        engine = ExecutionEngine("guards:sequence", rngs=discover_rngs(inner_c))

        _assert_twin_step(eager, compiled, engine, _batch(3), "capture")
        _assert_twin_step(eager, compiled, engine, _batch(3, offset=1), "replay")
        eager.rescale = compiled.rescale = True
        _assert_twin_step(eager, compiled, engine, _batch(3, offset=2), "mutated")

        stats = engine.stats
        assert stats["captures"] == 1 and stats["replays"] == 1, stats
        assert stats["invalidations"] == 1, stats
        assert stats["eager_steps"] == 1, stats


class TestChaosWrappedInference:
    """A serve-side chaos wrapper flipping behaviour mid-stream must come
    through :class:`CompiledModel` exactly as it would eagerly — NaNs
    while failing, real predictions after recovery, never a stale plan's
    numbers."""

    def test_nan_model_compiles_faithfully(self):
        inner_e, inner_c = _twins()
        eager = NaNModel(inner_e.eval(), failing=True)
        compiled = CompiledModel(NaNModel(inner_c.eval(), failing=True),
                                 label="guards:chaos")
        compiled.eval()
        x, _, t = _batch(2)

        with no_grad():
            poisoned_e, poisoned_c = eager(Tensor(x), t), compiled(Tensor(x), t)
            assert np.array_equal(poisoned_e.data, poisoned_c.data, equal_nan=True)
            assert np.isnan(poisoned_c.data).all()

            eager.failing = compiled.inner.failing = False
            for i in range(2):
                healthy_e, healthy_c = eager(Tensor(x), t), compiled(Tensor(x), t)
                assert np.array_equal(healthy_e.data, healthy_c.data), f"probe {i}"
                assert np.isfinite(healthy_c.data).all()

        stats = compiled._engine.stats
        assert stats["captures"] == 1 and stats["replays"] == 2, stats
        assert stats["eager_steps"] == 0 and stats["invalidations"] == 0, stats
