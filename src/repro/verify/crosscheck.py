"""Reference-vs-production cross-checks.

Each ``check_*`` function instantiates the production implementation
(``repro.core`` / ``repro.graph``), runs the naive loop-based reference
from :mod:`repro.verify.reference` on the *same* parameters and inputs, and
compares elementwise.  :func:`run_all` drives every check — this is what
``repro.cli verify`` and the tier-1 test suite call, and what any future
vectorization/caching PR must keep green.

The checks run on deliberately tiny shapes (the references are O(N³)
python loops) with a tight ``rtol``: production and reference compute the
same float64 math, so agreement should be near machine precision — a
looser tolerance would hide exactly the class of silent bug this module
exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..core.discrepancy import discrepancy_loss
from ..core.gcgru import GCGRUCell, NodeAdaptiveGraphConv
from ..core.sampling import sample_time_distances
from ..core.tagsl import TagSL
from ..core.time_encoding import DiscreteTimeEmbedding
from ..graph.adjacency import row_softmax
from ..graph.cheb import chebyshev_supports
from . import reference
from .determinism import named_rng

__all__ = [
    "CheckResult",
    "check_chebyshev",
    "check_discrepancy_loss",
    "check_gcgru",
    "check_node_adaptive_conv",
    "check_tagsl",
    "run_all",
]

#: default agreement tolerance (see module docstring / acceptance criteria)
DEFAULT_RTOL = 1e-6
_ATOL = 1e-9


@dataclass
class CheckResult:
    """Outcome of one reference-vs-production comparison."""

    name: str
    max_abs_err: float
    rtol: float
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        extra = f"  {self.detail}" if self.detail else ""
        return f"{status:4s} {self.name:<24s} max|Δ| {self.max_abs_err:.3e}{extra}"


def _result(name: str, produced: np.ndarray, expected: np.ndarray, rtol: float, detail: str = "") -> CheckResult:
    max_abs = float(np.max(np.abs(produced - expected))) if produced.size else 0.0
    passed = bool(np.allclose(produced, expected, rtol=rtol, atol=_ATOL))
    return CheckResult(name, max_abs, rtol, passed, detail)


# --------------------------------------------------------------------- #


def check_tagsl(seed: int = 0, rtol: float = DEFAULT_RTOL) -> CheckResult:
    """TagSL Eq. 6–9 (+ softmax Norm of Eq. 11) against the loop reference."""
    rng = named_rng(seed, "crosscheck-tagsl")
    num_nodes, node_dim, time_dim, steps, batch = 5, 3, 4, 12, 3
    encoder = DiscreteTimeEmbedding(steps, time_dim, rng=rng)
    tagsl = TagSL(num_nodes, node_dim, encoder, alpha=0.3, rng=rng)
    node_state = rng.normal(size=(batch, num_nodes, 2))
    time_indices = rng.integers(0, steps * 2, size=batch)

    produced = tagsl(Tensor(node_state), time_indices).data
    expected = reference.tagsl_adjacency_reference(
        tagsl.node_embedding.data,
        encoder.weight.data,
        node_state,
        time_indices,
        alpha=tagsl.alpha,
    )
    adjacency = _result("tagsl (Eq. 6-9)", produced, expected, rtol)
    if not adjacency.passed:
        return adjacency
    normalized = row_softmax(Tensor(produced)).data
    norm_expected = reference.row_softmax_reference(expected)
    norm = _result("tagsl norm (Eq. 11)", normalized, norm_expected, rtol)
    if not norm.passed:
        return norm
    return CheckResult(
        "tagsl (Eq. 6-9, 11)",
        max(adjacency.max_abs_err, norm.max_abs_err),
        rtol,
        True,
        "adjacency + softmax norm",
    )


def check_discrepancy_loss(seed: int = 0, rtol: float = DEFAULT_RTOL) -> CheckResult:
    """Discrepancy loss Eq. 3–5 on a batch of Algorithm-1 samples."""
    rng = named_rng(seed, "crosscheck-discrepancy")
    steps, time_dim, batch, window = 24, 5, 6, 8
    encoder = DiscreteTimeEmbedding(steps, time_dim, rng=rng)
    windows = (
        np.arange(window)[None, :]
        + rng.integers(0, steps * 7, size=batch)[:, None]
    )
    samples = sample_time_distances(windows, rng)
    produced = np.asarray(discrepancy_loss(encoder, samples).item())
    expected = np.asarray(
        reference.discrepancy_loss_reference(
            encoder.weight.data,
            samples.anchor_values,
            samples.adjacent_values,
            samples.mid_values,
            samples.distant_values,
        )
    )
    return _result("discrepancy (Eq. 3-5)", produced, expected, rtol)


def check_node_adaptive_conv(seed: int = 0, rtol: float = DEFAULT_RTOL) -> CheckResult:
    """Node-adaptive graph convolution (Eq. 10 + 12)."""
    rng = named_rng(seed, "crosscheck-conv")
    batch, num_nodes, in_dim, out_dim, embed_dim, cheb_k = 2, 4, 3, 5, 6, 3
    conv = NodeAdaptiveGraphConv(in_dim, out_dim, embed_dim, cheb_k, rng=rng)
    x = rng.normal(size=(batch, num_nodes, in_dim))
    adjacency = row_softmax(Tensor(rng.normal(size=(batch, num_nodes, num_nodes)))).data
    node_embed = rng.normal(size=(batch, num_nodes, embed_dim))
    produced = conv(Tensor(x), Tensor(adjacency), Tensor(node_embed)).data
    expected = reference.node_adaptive_conv_reference(
        x, adjacency, node_embed, conv.weight_pool.data, conv.bias_pool.data, cheb_k
    )
    return _result("node-adaptive conv", produced, expected, rtol)


def check_gcgru(seed: int = 0, rtol: float = DEFAULT_RTOL) -> CheckResult:
    """GCGRU gate math (Eq. 13–16)."""
    rng = named_rng(seed, "crosscheck-gcgru")
    batch, num_nodes, in_dim, hidden_dim, embed_dim, cheb_k = 2, 4, 2, 3, 5, 2
    cell = GCGRUCell(in_dim, hidden_dim, embed_dim, cheb_k, rng=rng)
    x = rng.normal(size=(batch, num_nodes, in_dim))
    h = rng.normal(size=(batch, num_nodes, hidden_dim))
    adjacency = row_softmax(Tensor(rng.normal(size=(batch, num_nodes, num_nodes)))).data
    node_embed = rng.normal(size=(batch, num_nodes, embed_dim))
    produced = cell(Tensor(x), Tensor(h), Tensor(adjacency), Tensor(node_embed)).data
    expected = reference.gcgru_cell_reference(
        x,
        h,
        adjacency,
        node_embed,
        cell.gate_conv.weight_pool.data,
        cell.gate_conv.bias_pool.data,
        cell.candidate_conv.weight_pool.data,
        cell.candidate_conv.bias_pool.data,
        cheb_k,
    )
    return _result("gcgru (Eq. 13-16)", produced, expected, rtol)


def check_chebyshev(seed: int = 0, rtol: float = DEFAULT_RTOL) -> CheckResult:
    """Chebyshev recurrence, single matrix and batched."""
    rng = named_rng(seed, "crosscheck-cheb")
    n, order = 5, 4
    single = rng.normal(size=(n, n))
    batched = rng.normal(size=(3, n, n))
    worst = 0.0
    for label, matrix in (("2-D", single), ("batched", batched)):
        produced = chebyshev_supports(Tensor(matrix), order=order)
        expected = reference.chebyshev_supports_reference(matrix, order=order)
        for k, (prod, ref) in enumerate(zip(produced, expected)):
            partial = _result(f"chebyshev[{label} T_{k}]", prod.data, ref, rtol)
            worst = max(worst, partial.max_abs_err)
            if not partial.passed:
                return partial
    return CheckResult("chebyshev propagation", worst, rtol, True, "orders 0-3, 2-D + batched")


ALL_CHECKS = {
    "tagsl": check_tagsl,
    "discrepancy": check_discrepancy_loss,
    "node_adaptive_conv": check_node_adaptive_conv,
    "gcgru": check_gcgru,
    "chebyshev": check_chebyshev,
}


def run_all(seed: int = 0, rtol: float = DEFAULT_RTOL) -> list[CheckResult]:
    """Run every reference-vs-production cross-check."""
    return [check(seed=seed, rtol=rtol) for check in ALL_CHECKS.values()]
