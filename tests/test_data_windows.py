"""Tests (incl. hypothesis) for windowing, splits, scalers, and loader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    IdentityScaler,
    MinMaxScaler,
    StandardScaler,
    chronological_split,
    load_task,
    make_windows,
    split_series_by_steps,
)


def _series(total=40, nodes=3, dim=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(total, nodes, dim)), np.arange(total)


class TestMakeWindows:
    def test_counts_and_shapes(self):
        values, times = _series(40)
        ws = make_windows(values, times, history=4, horizon=3)
        assert len(ws) == 40 - 7 + 1
        assert ws.inputs.shape == (34, 4, 3, 2)
        assert ws.targets.shape == (34, 3, 3, 2)
        assert ws.time_indices.shape == (34, 7)

    def test_target_dim_truncation(self):
        values, times = _series()
        ws = make_windows(values, times, 4, 3, target_dim=1)
        assert ws.targets.shape[-1] == 1

    def test_window_contents_align(self):
        values, times = _series()
        ws = make_windows(values, times, 4, 3)
        np.testing.assert_allclose(ws.inputs[5], values[5:9])
        np.testing.assert_allclose(ws.targets[5], values[9:12])
        np.testing.assert_array_equal(ws.time_indices[5], np.arange(5, 12))

    def test_stride(self):
        values, times = _series(40)
        ws = make_windows(values, times, 4, 3, stride=2)
        assert len(ws) == 17

    def test_too_short_raises(self):
        values, times = _series(5)
        with pytest.raises(ValueError):
            make_windows(values, times, 4, 3)


@given(
    total=st.integers(min_value=12, max_value=60),
    history=st.integers(min_value=1, max_value=5),
    horizon=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_window_count_property(total, history, horizon):
    values, times = _series(total)
    ws = make_windows(values, times, history, horizon)
    assert len(ws) == total - history - horizon + 1
    # every window's time stamps are consecutive
    diffs = np.diff(ws.time_indices, axis=1)
    assert (diffs == 1).all()


class TestSplits:
    def test_chronological_split_partition(self):
        values, times = _series(50)
        ws = make_windows(values, times, 4, 2)
        train, val, test = chronological_split(ws, 0.6, 0.2)
        assert len(train) + len(val) + len(test) == len(ws)
        assert train.time_indices[-1, 0] < val.time_indices[0, 0] < test.time_indices[0, 0]

    def test_invalid_fractions(self):
        values, times = _series(50)
        ws = make_windows(values, times, 4, 2)
        with pytest.raises(ValueError):
            chronological_split(ws, 0.8, 0.3)
        with pytest.raises(ValueError):
            chronological_split(ws, 0.0, 0.2)

    def test_split_series_by_steps_no_leakage(self):
        values, times = _series(60)
        (tr, ttr), (va, tva), (te, tte) = split_series_by_steps(values, times, (30, 40))
        assert tr.shape[0] == 30 and va.shape[0] == 10 and te.shape[0] == 20
        assert ttr[-1] < tva[0] < tte[0]

    def test_split_series_invalid_boundaries(self):
        values, times = _series(60)
        with pytest.raises(ValueError):
            split_series_by_steps(values, times, (40, 30))


class TestScalers:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_standard_roundtrip(self, seed):
        values, _ = _series(seed=seed)
        scaler = StandardScaler().fit(values)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(values)), values, atol=1e-9)

    def test_standard_statistics(self):
        values, _ = _series(100)
        out = StandardScaler().fit_transform(values)
        np.testing.assert_allclose(out.mean(axis=(0, 1)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=(0, 1)), 1.0, atol=1e-9)

    def test_standard_constant_channel_safe(self):
        values = np.ones((10, 2, 1))
        out = StandardScaler().fit_transform(values)
        assert np.isfinite(out).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2, 1)))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_minmax_roundtrip_and_range(self, seed):
        values, _ = _series(seed=seed)
        scaler = MinMaxScaler()
        out = scaler.fit_transform(values)
        assert out.min() >= -1e-9 and out.max() <= 1 + 1e-9
        np.testing.assert_allclose(scaler.inverse_transform(out), values, atol=1e-9)

    def test_minmax_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(low=1.0, high=0.0)

    def test_identity(self):
        values, _ = _series()
        scaler = IdentityScaler().fit(values)
        assert scaler.transform(values) is values
        assert scaler.inverse_transform(values) is values


class TestDataLoader:
    def _windows(self):
        values, times = _series(40)
        return make_windows(values, times, 4, 2)

    def test_batch_shapes_and_count(self):
        ws = self._windows()
        loader = DataLoader(ws, batch_size=8)
        batches = list(loader)
        assert len(batches) == len(loader)
        assert batches[0][0].shape == (8, 4, 3, 2)

    def test_covers_all_samples(self):
        ws = self._windows()
        loader = DataLoader(ws, batch_size=8)
        assert sum(b[0].shape[0] for b in loader) == len(ws)

    def test_drop_last(self):
        ws = self._windows()
        loader = DataLoader(ws, batch_size=8, drop_last=True)
        assert all(b[0].shape[0] == 8 for b in loader)
        assert len(loader) == len(ws) // 8

    def test_shuffle_is_reproducible_and_reshuffles(self):
        ws = self._windows()
        l1 = DataLoader(ws, batch_size=4, shuffle=True, seed=1)
        l2 = DataLoader(ws, batch_size=4, shuffle=True, seed=1)
        first1 = next(iter(l1))[2]
        first2 = next(iter(l2))[2]
        np.testing.assert_array_equal(first1, first2)
        second1 = next(iter(l1))[2]  # epoch 2 of l1
        assert not np.array_equal(first1, second1)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._windows(), batch_size=0)


class TestLoadTask:
    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_task("metroville")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            load_task("hzmetro", size="huge")

    def test_scaling_fitted_on_train_only(self, tiny_task):
        train_mean = tiny_task.train.inputs.mean()
        assert abs(train_mean) < 0.2  # standardized on itself

    def test_inverse_targets_roundtrip(self, tiny_task):
        scaled = tiny_task.test.targets
        restored = tiny_task.inverse_targets(scaled)
        rescaled = (restored - tiny_task.scaler.mean[: scaled.shape[-1]]) / tiny_task.scaler.std[: scaled.shape[-1]]
        np.testing.assert_allclose(rescaled, scaled, atol=1e-9)

    def test_splits_are_chronological(self, tiny_task):
        assert tiny_task.train.time_indices.max() < tiny_task.val.time_indices.min()
        assert tiny_task.val.time_indices.max() < tiny_task.test.time_indices.min()

    def test_electricity_has_one_feature(self):
        task = load_task("electricity", num_nodes=6, num_days=12)
        assert task.in_dim == 1 and task.out_dim == 1


class TestNodeSubset:
    def test_windows_sliced_scaler_and_calendar_shared(self, tiny_task):
        nodes = [5, 1, 3]
        sub = tiny_task.node_subset(nodes)
        assert sub.num_nodes == 3
        np.testing.assert_array_equal(
            sub.test.inputs, tiny_task.test.inputs[:, :, nodes, :])
        np.testing.assert_array_equal(
            sub.test.targets, tiny_task.test.targets[:, :, nodes, :])
        np.testing.assert_array_equal(
            sub.test.time_indices, tiny_task.test.time_indices)
        assert sub.scaler is tiny_task.scaler
        assert sub.history == tiny_task.history and sub.horizon == tiny_task.horizon

    def test_invalid_subsets_rejected(self, tiny_task):
        with pytest.raises(ValueError):
            tiny_task.node_subset([])
        with pytest.raises(ValueError):
            tiny_task.node_subset([0, tiny_task.num_nodes])
        with pytest.raises(ValueError):
            tiny_task.node_subset([1, 1])
