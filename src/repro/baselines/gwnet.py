"""Graph WaveNet (Wu et al., IJCAI 2019): self-adaptive adjacency plus
stacked dilated temporal convolutions.

Each block applies a gated causal TCN over time followed by graph
convolution over the learned adjacency softmax(relu(E₁E₂ᵀ)); skip
connections feed an MLP that emits all Q horizons at once.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax
from ..nn import GatedTCNBlock, Linear, Module, ModuleList, Parameter, init


class GraphWaveNet(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        channels: int = 32,
        num_blocks: int = 2,
        embed_dim: int = 10,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.channels = channels
        self.input_proj = Linear(in_dim, channels, rng=rng)
        self.source_embedding = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.3))
        self.target_embedding = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.3))
        self.tcn_blocks = ModuleList(
            [GatedTCNBlock(channels, kernel_size=2, dilation=2 ** i, rng=rng) for i in range(num_blocks)]
        )
        self.graph_projs = ModuleList(
            [Linear(channels, channels, rng=rng) for _ in range(num_blocks)]
        )
        self.skip_proj = Linear(channels, channels, rng=rng)
        self.head = Linear(channels, horizon * out_dim, rng=rng)

    def adaptive_adjacency(self) -> Tensor:
        logits = (self.source_embedding @ self.target_embedding.T).relu()
        return softmax(logits, axis=-1)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, num_nodes, _ = x.shape
        adjacency = self.adaptive_adjacency()
        # Fold nodes into the batch for the temporal convolutions.
        h = self.input_proj(x)  # (B, P, N, C)
        h = h.transpose(0, 2, 1, 3).reshape(batch * num_nodes, history, self.channels)
        skip = None
        for tcn, gconv in zip(self.tcn_blocks, self.graph_projs):
            residual = h
            h = tcn(h)
            # Unfold for spatial mixing: (B, P, N, C), convolve over nodes.
            spatial = h.reshape(batch, num_nodes, history, self.channels).transpose(0, 2, 1, 3)
            spatial = gconv(adjacency @ spatial)
            h = spatial.transpose(0, 2, 1, 3).reshape(batch * num_nodes, history, self.channels)
            h = h + residual
            contribution = self.skip_proj(h[:, -1, :])
            skip = contribution if skip is None else skip + contribution
        flat = self.head(skip.relu())  # (B*N, Q*d_out)
        out = flat.reshape(batch, num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
