"""Extension experiment (not in the paper): robustness to disruptions.

Injects station closures and demand surges into the *test* period of an
HZMetro-style dataset, then reports each model's MAE separately on
regular and disrupted windows.  Expected shape: every model degrades on
disrupted windows; models leaning on calendar regularity (HA) degrade
most; models reading the recent frames (TGCRN and graph baselines)
recover faster.
"""

from __future__ import annotations

import numpy as np

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.data.events import inject_events, split_regular_disrupted
from repro.metrics import evaluate
from repro.training import TrainingConfig, run_experiment

METHODS = ("ha", "dcrnn", "agcrn", "tgcrn")


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    # Events hit only the test range so training stays regular.
    test_start = int(task.test.time_indices[0, 0])
    total = task.dataset.num_steps
    rng = np.random.default_rng(1)
    log = inject_events(
        task.dataset, rng, num_closures=2, num_surges=2, duration=6,
        start_range=(test_start + task.history, total - 6),
    )
    # Rebuild the test windows from the mutated raw series.
    from repro.data.windows import make_windows

    scaled = task.scaler.transform(task.dataset.values[test_start:])
    task.test = make_windows(
        scaled, task.dataset.time_index[test_start:], task.history, task.horizon,
        target_dim=task.out_dim,
    )

    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    lines = [f"{'model':<8} | {'regular MAE':>12} | {'disrupted MAE':>14} | {'degradation':>11}"]
    lines.append("-" * 56)
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        result = run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                                num_layers=s.num_layers, keep_model=True, **kwargs)
        if method in ("ha",):
            prediction, target = result.model.evaluate(task, "test")
        else:
            from repro.training import Trainer

            prediction, target = Trainer(config).predict(result.model, task, "test")
        (reg_p, reg_t), (dis_p, dis_t) = split_regular_disrupted(
            prediction, target, task.test.time_indices, log
        )
        regular_mae = evaluate(reg_p, reg_t).mae if len(reg_p) else float("nan")
        disrupted_mae = evaluate(dis_p, dis_t).mae if len(dis_p) else float("nan")
        ratio = disrupted_mae / regular_mae if regular_mae and len(dis_p) else float("nan")
        lines.append(f"{method:<8} | {regular_mae:12.2f} | {disrupted_mae:14.2f} | {ratio:10.2f}x")
    lines.append(f"\ninjected events in test range: {len(log.events)}")
    return "\n".join(lines)


def test_robustness_events(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("robustness_events", out)
