"""Tests for event injection and disrupted-window evaluation."""

import numpy as np
import pytest

from repro.data import SpatioTemporalGenerator, SyntheticConfig
from repro.data.events import Event, EventLog, inject_events, split_regular_disrupted


@pytest.fixture
def dataset():
    return SpatioTemporalGenerator(
        SyntheticConfig(num_nodes=10, steps_per_day=24, num_days=6, seed=0)
    ).generate()


class TestEvent:
    def test_overlap_logic(self):
        event = Event("closure", (0,), start=10, stop=20, magnitude=0.0)
        assert event.overlaps(15, 25)
        assert event.overlaps(5, 11)
        assert not event.overlaps(20, 30)  # [start, stop) boundary
        assert not event.overlaps(0, 10)


class TestInjection:
    def test_closures_suppress_flows(self, dataset):
        baseline = dataset.values.copy()
        rng = np.random.default_rng(1)
        log = inject_events(dataset, rng, num_closures=1, num_surges=0, duration=5)
        event = log.events[0]
        assert event.kind == "closure"
        window = dataset.values[event.start : event.stop, list(event.nodes)]
        original = baseline[event.start : event.stop, list(event.nodes)]
        np.testing.assert_allclose(window, original * event.magnitude)
        # untouched elsewhere
        untouched = [n for n in range(10) if n not in event.nodes]
        np.testing.assert_allclose(dataset.values[:, untouched], baseline[:, untouched])

    def test_surges_amplify_flows(self, dataset):
        baseline = dataset.values.copy()
        log = inject_events(dataset, np.random.default_rng(2), num_closures=0,
                            num_surges=1, duration=4, surge_magnitude=3.0)
        event = log.events[0]
        assert event.kind == "surge"
        window = dataset.values[event.start : event.stop, list(event.nodes)]
        np.testing.assert_allclose(
            window, baseline[event.start : event.stop, list(event.nodes)] * 3.0
        )

    def test_too_short_dataset_rejected(self):
        short = SpatioTemporalGenerator(
            SyntheticConfig(num_nodes=4, steps_per_day=4, num_days=2, seed=0)
        ).generate()
        with pytest.raises(ValueError):
            inject_events(short, np.random.default_rng(0), duration=10)

    def test_event_count(self, dataset):
        log = inject_events(dataset, np.random.default_rng(3), num_closures=2, num_surges=3)
        assert len(log.events) == 5
        assert sum(e.kind == "surge" for e in log.events) == 3


class TestDisturbedMask:
    def test_mask_matches_overlaps(self):
        log = EventLog([Event("closure", (0,), 10, 15, 0.0)])
        windows = np.stack([np.arange(s, s + 4) for s in (0, 8, 12, 20)])
        mask = log.disturbed_mask(windows)
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_empty_log(self):
        log = EventLog()
        windows = np.arange(8).reshape(2, 4)
        assert not log.disturbed_mask(windows).any()


class TestSplit:
    def test_partition_is_complete(self):
        log = EventLog([Event("surge", (0,), 5, 9, 2.0)])
        time_indices = np.stack([np.arange(s, s + 3) for s in range(10)])
        prediction = np.arange(10.0)[:, None]
        target = prediction + 1
        (reg_p, reg_t), (dis_p, dis_t) = split_regular_disrupted(
            prediction, target, time_indices, log
        )
        assert len(reg_p) + len(dis_p) == 10
        # windows starting at 3..8 overlap [5, 9)
        assert len(dis_p) == 6
        np.testing.assert_allclose(reg_t - reg_p, 1.0)
