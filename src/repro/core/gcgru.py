"""Graph Convolution-based Gated Recurrent Unit (GCGRU, §III-B, Eq. 10–16).

Each gate performs a graph convolution of ``[X_t ; h_{t-1}]`` over the
(normalized) time-aware adjacency and then applies *node-adaptive* weights:
instead of a full per-node tensor ``W ∈ R^{N×C_in×C_out}`` the cell learns
a small pool ``W̃ ∈ R^{d_E×C_in×C_out}`` combined through the blended
embedding ``Ê^t = [E_ν ; E_{τ,t}]`` (Eq. 12), i.e. ``W = Ê^t W̃`` — the
matrix decomposition the paper uses to control the parameter scale.

Any optimization of this path must keep
``repro.verify.crosscheck.check_gcgru`` green — the cell is diffed
elementwise against a naive loop-based rendition of Eq. 13–16.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat
from ..nn import Module, Parameter, init


class NodeAdaptiveGraphConv(Module):
    """Graph convolution with embedding-factorized per-node weights.

    Computes ``y[b,n] = (Σ_k S_k x)[b,n] · W_n + b_n`` where the supports
    S_k are ``[I, Â, Â², ...]`` up to ``cheb_k`` terms and
    ``W_n = Ê[n] · W̃``, ``b_n = Ê[n] · b̃``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        embed_dim: int,
        cheb_k: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.embed_dim = embed_dim
        self.cheb_k = cheb_k
        self.weight_pool = Parameter(
            init.xavier_uniform((embed_dim, cheb_k * in_dim * out_dim), rng)
        )
        self.bias_pool = Parameter(init.xavier_uniform((embed_dim, out_dim), rng))

    def forward(self, x: Tensor, adjacency: Tensor, node_embed: Tensor) -> Tensor:
        """Apply the convolution.

        Parameters
        ----------
        x: (B, N, C_in) node features.
        adjacency: (B, N, N) normalized Â^t.
        node_embed: (B, N, d_E) blended node/time embedding Ê^t.
        """
        batch, num_nodes, _ = x.shape
        # Polynomial supports: x, Âx, Â(Âx), ...
        terms = [x]
        for _ in range(self.cheb_k - 1):
            terms.append(adjacency @ terms[-1])
        conv = concat(terms, axis=-1)  # (B, N, K*C_in)

        weights = node_embed @ self.weight_pool  # (B, N, K*C_in*C_out)
        weights = weights.reshape(batch, num_nodes, self.cheb_k * self.in_dim, self.out_dim)
        bias = node_embed @ self.bias_pool  # (B, N, C_out)
        out = conv.unsqueeze(-2) @ weights  # (B, N, 1, C_out)
        return out.squeeze(-2) + bias


class GCGRUCell(Module):
    """One recurrent step of Eq. 13–16 over a batch of graphs."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        embed_dim: int,
        cheb_k: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        combined = in_dim + hidden_dim
        self.gate_conv = NodeAdaptiveGraphConv(combined, 2 * hidden_dim, embed_dim, cheb_k, rng=rng)
        self.candidate_conv = NodeAdaptiveGraphConv(combined, hidden_dim, embed_dim, cheb_k, rng=rng)

    def forward(self, x: Tensor, h: Tensor, adjacency: Tensor, node_embed: Tensor) -> Tensor:
        """x: (B,N,C_in), h: (B,N,H), adjacency: (B,N,N), node_embed: (B,N,d_E)."""
        xh = concat([x, h], axis=-1)
        gates = self.gate_conv(xh, adjacency, node_embed).sigmoid()
        z = gates[:, :, : self.hidden_dim]       # update gate (Eq. 13)
        r = gates[:, :, self.hidden_dim :]       # reset gate (Eq. 14)
        xrh = concat([x, r * h], axis=-1)
        candidate = self.candidate_conv(xrh, adjacency, node_embed).tanh()  # Eq. 15
        return (1.0 - z) * h + z * candidate     # Eq. 16
