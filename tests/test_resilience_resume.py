"""Resume determinism: kill-and-resume must be bit-compatible.

The acceptance bar for checkpoint/resume is not "it roughly continues"
but *bit-level* equivalence: a run killed between epochs and resumed from
its checkpoint finishes with the same ``state_hash`` and the same loss
curve as an uninterrupted twin.  Anything less means every RNG stream,
Adam moment, and schedule position is not actually round-tripping.
"""

import json

import numpy as np
import pytest

from repro.core import TGCRN
from repro.data import load_task
from repro.nn import state_hash
from repro.resilience import AbortInjector, SimulatedCrash
from repro.training import Trainer, TrainingConfig
from repro.verify import named_rng

SEED = 11
EPOCHS = 4


def _task():
    return load_task("hzmetro", num_nodes=4, num_days=4, seed=SEED)


def _model(task):
    model = TGCRN(
        num_nodes=task.num_nodes, in_dim=task.in_dim, out_dim=task.out_dim,
        horizon=task.horizon, hidden_dim=4, num_layers=1, node_dim=3,
        time_dim=3, steps_per_day=task.steps_per_day,
        rng=named_rng(SEED, "resume-test-model"),
    )
    # Exercise the scheduled-sampling RNG stream so its state must also
    # survive the round trip.
    model.scheduled_sampling = 0.5
    return model


def _config(**overrides) -> TrainingConfig:
    base = dict(epochs=EPOCHS, batch_size=8, seed=SEED)
    base.update(overrides)
    return TrainingConfig(**base)


class TestResumeDeterminism:
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path):
        task = _task()
        straight = _model(task)
        straight_history = Trainer(_config()).fit(straight, task)
        straight_hash = state_hash(straight)

        ckpt = str(tmp_path / "state.npz")
        log = tmp_path / "run.jsonl"
        killed = _model(task)
        with pytest.raises(SimulatedCrash):
            Trainer(_config(checkpoint_path=ckpt, log_path=str(log))).fit(
                killed, task, fault_hook=AbortInjector(epoch=1))

        resumed = _model(task)
        resumed_history = Trainer(
            _config(checkpoint_path=ckpt, resume=True, log_path=str(log))
        ).fit(resumed, task)

        assert state_hash(resumed) == straight_hash
        assert resumed_history.train_losses == pytest.approx(
            straight_history.train_losses, rel=1e-12, abs=0.0)
        assert resumed_history.val_maes == pytest.approx(
            straight_history.val_maes, rel=1e-12, abs=0.0)
        assert resumed_history.lrs == straight_history.lrs
        assert resumed_history.best_epoch == straight_history.best_epoch

        # The resumed run appends to the same JSONL instead of truncating:
        # both the pre-crash epochs and the resume marker are present.
        records = [json.loads(line) for line in log.open()]
        events = [r["event"] for r in records]
        assert "resume" in events
        epochs_logged = [r["epoch"] for r in records if r["event"] == "epoch"]
        assert epochs_logged == [0, 1, 2, 3]
        resume_record = next(r for r in records if r["event"] == "resume")
        assert resume_record["epoch"] == 2  # killed after epoch 1 completed

    def test_double_resume_is_idempotent(self, tmp_path):
        """Kill twice at different epochs; the final state still matches."""
        task = _task()
        straight = _model(task)
        Trainer(_config()).fit(straight, task)
        straight_hash = state_hash(straight)

        ckpt = str(tmp_path / "state.npz")
        survivor = _model(task)
        with pytest.raises(SimulatedCrash):
            Trainer(_config(checkpoint_path=ckpt)).fit(
                survivor, task, fault_hook=AbortInjector(epoch=0))
        survivor = _model(task)
        with pytest.raises(SimulatedCrash):
            Trainer(_config(checkpoint_path=ckpt, resume=True)).fit(
                survivor, task, fault_hook=AbortInjector(epoch=2))
        survivor = _model(task)
        Trainer(_config(checkpoint_path=ckpt, resume=True)).fit(survivor, task)
        assert state_hash(survivor) == straight_hash

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        """resume=True with no file yet must behave like a cold start."""
        task = _task()
        cold = _model(task)
        cold_history = Trainer(_config(epochs=2)).fit(cold, task)
        warm = _model(task)
        warm_history = Trainer(
            _config(epochs=2, checkpoint_path=str(tmp_path / "none_yet.npz"), resume=True)
        ).fit(warm, task)
        assert warm_history.train_losses == cold_history.train_losses
        assert state_hash(warm) == state_hash(cold)

    def test_checkpoint_written_every_epoch_and_loadable(self, tmp_path):
        from repro.resilience import load_training_checkpoint

        task = _task()
        ckpt = tmp_path / "state.npz"
        Trainer(_config(epochs=2, checkpoint_path=str(ckpt))).fit(_model(task), task)
        loaded = load_training_checkpoint(ckpt)
        assert loaded.epoch == 2
        assert len(loaded.history["train_losses"]) == 2
        assert {"trainer", "loader", "model_sampling"} <= set(loaded.rng_states)
