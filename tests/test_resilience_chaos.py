"""Fault injectors: deterministic, targeted, and composable."""

import numpy as np
import pytest

from repro.data import load_task
from repro.data.io import load_dataset, save_dataset
from repro.resilience import (
    AbortInjector,
    ChaosSchedule,
    FlakyReader,
    NaNGradientInjector,
    SimulatedCrash,
    TransientIOError,
    corrupt_checkpoint,
)


class _Param:
    def __init__(self):
        self.grad = np.zeros(3)


class _FakeModel:
    def __init__(self):
        self._params = [_Param()]

    def parameters(self):
        return self._params


class TestNaNGradientInjector:
    def test_fires_only_at_target_step(self):
        injector = NaNGradientInjector(epoch=2, batch=1)
        model = _FakeModel()
        injector("after_backward", model=model, epoch=1, batch=1)
        injector("after_backward", model=model, epoch=2, batch=0)
        injector("epoch_end", model=model, epoch=2)
        assert np.all(np.isfinite(model.parameters()[0].grad))
        injector("after_backward", model=model, epoch=2, batch=1)
        assert np.all(np.isnan(model.parameters()[0].grad))

    def test_once_semantics(self):
        injector = NaNGradientInjector(epoch=0, batch=0, once=True)
        first = _FakeModel()
        injector("after_backward", model=first, epoch=0, batch=0)
        assert injector.fired == 1
        second = _FakeModel()  # retry after rollback sees a clean pass
        injector("after_backward", model=second, epoch=0, batch=0)
        assert np.all(np.isfinite(second.parameters()[0].grad))

    def test_repeating_mode(self):
        injector = NaNGradientInjector(epoch=0, batch=0, once=False)
        for _ in range(3):
            model = _FakeModel()
            injector("after_backward", model=model, epoch=0, batch=0)
            assert np.all(np.isnan(model.parameters()[0].grad))
        assert injector.fired == 3

    def test_skips_params_without_grad(self):
        injector = NaNGradientInjector(epoch=0, batch=0)
        model = _FakeModel()
        model.parameters()[0].grad = None
        second = _Param()
        model._params.append(second)
        injector("after_backward", model=model, epoch=0, batch=0)
        assert np.all(np.isnan(second.grad))


class TestAbortInjector:
    def test_fires_only_at_target_epoch_end(self):
        injector = AbortInjector(epoch=1)
        injector("epoch_end", model=None, epoch=0)
        injector("after_backward", model=None, epoch=1, batch=0)
        with pytest.raises(SimulatedCrash):
            injector("epoch_end", model=None, epoch=1)

    def test_once_semantics(self):
        injector = AbortInjector(epoch=1, once=True)
        with pytest.raises(SimulatedCrash):
            injector("epoch_end", model=None, epoch=1)
        injector("epoch_end", model=None, epoch=1)  # resumed run survives


class TestChaosSchedule:
    def test_composes_injectors(self):
        nan = NaNGradientInjector(epoch=0, batch=0)
        abort = AbortInjector(epoch=0)
        schedule = ChaosSchedule(nan, abort)
        model = _FakeModel()
        schedule("after_backward", model=model, epoch=0, batch=0)
        assert np.all(np.isnan(model.parameters()[0].grad))
        with pytest.raises(SimulatedCrash):
            schedule("epoch_end", model=model, epoch=0)


class TestCorruptCheckpoint:
    def test_truncate_halves_file(self, tmp_path):
        path = tmp_path / "ck.bin"
        path.write_bytes(bytes(range(100)))
        corrupt_checkpoint(path, mode="truncate")
        assert path.read_bytes() == bytes(range(50))

    def test_bitflip_is_deterministic(self, tmp_path):
        payload = bytes(range(256)) * 4
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_checkpoint(a, mode="bitflip", seed=7)
        corrupt_checkpoint(b, mode="bitflip", seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload
        assert len(a.read_bytes()) == len(payload)

    def test_rejects_unknown_mode_and_empty_file(self, tmp_path):
        path = tmp_path / "ck.bin"
        path.write_bytes(b"data")
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_checkpoint(path, mode="gamma-ray")
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_checkpoint(empty)


class TestFlakyReaderRetries:
    @pytest.fixture()
    def saved(self, tmp_path):
        task = load_task("hzmetro", num_nodes=4, num_days=3, seed=2)
        path = tmp_path / "dataset.npz"
        save_dataset(path, task.dataset)
        return path

    def test_retries_recover_from_transient_failures(self, saved):
        reader = FlakyReader(failures=2)
        dataset = load_dataset(saved, retries=2, reader=reader)
        assert reader.attempts == 3
        assert dataset.values.shape[1] == 4

    def test_exhausted_retries_surface_the_error(self, saved):
        with pytest.raises(TransientIOError):
            load_dataset(saved, retries=1, reader=FlakyReader(failures=3))

    def test_missing_file_is_never_retried(self, tmp_path):
        reader_calls = []

        def reader(path):
            reader_calls.append(path)
            raise FileNotFoundError(path)

        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npz", retries=5, reader=reader)
        assert len(reader_calls) == 1

    def test_flaky_reader_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            FlakyReader(failures=-1)
