"""Admission control and micro-batching: bounded, deadline-aware.

An unbounded queue converts overload into unbounded latency — every
request eventually gets an answer nobody is still waiting for.  The
:class:`RequestQueue` here is the opposite: a hard depth cap (admission
beyond it raises :class:`ServiceOverloadedError`, the "503" of this
layer), and deadline-aware shedding on both ends (a request whose
deadline has already passed is dropped at admission, and purged at
dequeue rather than wasting a model slot).

:class:`MicroBatcher` coalesces queued requests into one forward pass:
per-step time-aware graphs (TagSL) make TGCRN inference cost scale with
sequence work, not batch size, so batching compatible requests up to a
budget is nearly free throughput.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from .validation import ForecastRequest


class ServiceOverloadedError(RuntimeError):
    """Admission refused: the request queue is at capacity (a "503").

    Carries ``depth`` (current queue depth) and ``max_depth`` so callers
    can implement backoff.
    """

    def __init__(self, depth: int, max_depth: int, detail: str = ""):
        self.depth = depth
        self.max_depth = max_depth
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"service overloaded: queue at {depth}/{max_depth}{suffix}; retry with backoff"
        )


class DeadlineExceededError(RuntimeError):
    """Admission refused: the request's deadline already passed on arrival."""

    def __init__(self, request_id: str, deadline: float, now: float):
        self.request_id = request_id
        super().__init__(
            f"request {request_id} dead on arrival: deadline {deadline:.3f} "
            f"already passed at {now:.3f}"
        )


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`ForecastRequest` with shedding.

    ``put`` purges expired entries before checking capacity, so a burst
    of short-deadline requests cannot wedge the queue.  ``next_batch``
    returns ``(admitted, shed)`` — expired requests are separated out so
    the caller can answer them with a structured drop instead of
    silently forgetting them.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: deque[ForecastRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, request: ForecastRequest, now: float) -> list[ForecastRequest]:
        """Admit ``request``; returns the expired entries purged to make room.

        Raises :class:`DeadlineExceededError` when the request is dead on
        arrival and :class:`ServiceOverloadedError` when the queue is full
        even after purging.
        """
        if request.expired(now):
            raise DeadlineExceededError(request.request_id, request.deadline, now)
        with self._lock:
            purged = self._purge_expired(now)
            if len(self._items) >= self.max_depth:
                raise ServiceOverloadedError(len(self._items), self.max_depth)
            self._items.append(request)
            self._not_empty.notify()
        return purged

    def next_batch(
        self, max_batch: int, now: float
    ) -> tuple[list[ForecastRequest], list[ForecastRequest]]:
        """Dequeue up to ``max_batch`` live requests; also return the shed.

        FIFO order; entries whose deadline passed while queued land in
        the second list.  Both lists are empty when the queue is.
        """
        admitted: list[ForecastRequest] = []
        shed: list[ForecastRequest] = []
        with self._lock:
            while self._items and len(admitted) < max_batch:
                request = self._items.popleft()
                (shed if request.expired(now) else admitted).append(request)
        return admitted, shed

    def clear(self) -> list[ForecastRequest]:
        """Remove and return everything queued (crash/abort teardown)."""
        with self._lock:
            dropped = list(self._items)
            self._items.clear()
        return dropped

    def wait_nonempty(self, timeout: float) -> bool:
        """Block until the queue has an entry (worker-loop parking)."""
        with self._not_empty:
            if self._items:
                return True
            return self._not_empty.wait(timeout)

    def _purge_expired(self, now: float) -> list[ForecastRequest]:
        # Callers hold self._lock.
        live, dead = [], []
        for request in self._items:
            (dead if request.expired(now) else live).append(request)
        if dead:
            self._items.clear()
            self._items.extend(live)
        return dead


class MicroBatcher:
    """Coalesce compatible requests into one stacked forward pass.

    Requests validated against the same :class:`~.validation.RequestSpec`
    always share shapes, but the batcher still groups defensively by
    ``(window.shape, time_index.shape)`` so a future multi-spec server
    cannot silently stack ragged tensors.
    """

    def __init__(self, max_batch: int = 8):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch

    def groups(self, requests: list[ForecastRequest]) -> list[list[ForecastRequest]]:
        """Partition into shape-compatible groups of at most ``max_batch``."""
        buckets: dict[tuple, list[ForecastRequest]] = {}
        for request in requests:
            key = (request.window.shape, request.time_index.shape)
            buckets.setdefault(key, []).append(request)
        out: list[list[ForecastRequest]] = []
        for bucket in buckets.values():
            for i in range(0, len(bucket), self.max_batch):
                out.append(bucket[i : i + self.max_batch])
        return out

    @staticmethod
    def collate(batch: list[ForecastRequest]) -> tuple[np.ndarray, np.ndarray]:
        """Stack a compatible group into ``(x, t)`` model inputs."""
        x = np.stack([r.window for r in batch])
        t = np.stack([r.time_index for r in batch])
        return x, t
