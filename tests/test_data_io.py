"""Tests for dataset persistence and CSV export."""

import csv

import numpy as np
import pytest

from repro.data import (
    SpatioTemporalGenerator,
    SyntheticConfig,
    export_csv,
    load_dataset,
    save_dataset,
)


@pytest.fixture
def dataset():
    return SpatioTemporalGenerator(
        SyntheticConfig(num_nodes=6, steps_per_day=12, num_days=4, seed=5)
    ).generate()


class TestNpzRoundtrip:
    def test_values_preserved(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        np.testing.assert_allclose(loaded.values, dataset.values)
        np.testing.assert_array_equal(loaded.time_index, dataset.time_index)
        np.testing.assert_array_equal(loaded.areas, dataset.areas)
        assert loaded.line_edges == dataset.line_edges

    def test_generator_rebuilt_for_od_access(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        np.testing.assert_allclose(loaded.od_matrix(7), dataset.od_matrix(7))

    def test_config_preserved(self, tmp_path, dataset):
        save_dataset(tmp_path / "ds.npz", dataset)
        loaded = load_dataset(tmp_path / "ds.npz")
        assert loaded.config == dataset.config

    def test_electricity_generator_class_restored(self, tmp_path):
        from repro.data import ElectricityGenerator

        ds = ElectricityGenerator(
            SyntheticConfig(num_nodes=4, steps_per_day=12, num_days=3)
        ).generate()
        save_dataset(tmp_path / "e.npz", ds)
        loaded = load_dataset(tmp_path / "e.npz")
        assert type(loaded.generator).__name__ == "ElectricityGenerator"
        np.testing.assert_allclose(loaded.values, ds.values)


class TestCsvExport:
    def test_row_count_and_header(self, tmp_path, dataset):
        path = tmp_path / "ds.csv"
        export_csv(path, dataset, feature_names=["inflow", "outflow"])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["step", "slot_of_day", "day_of_week", "node", "inflow", "outflow"]
        assert len(rows) == 1 + dataset.num_steps * dataset.num_nodes

    def test_values_match(self, tmp_path, dataset):
        path = tmp_path / "ds.csv"
        export_csv(path, dataset)
        with open(path) as handle:
            reader = csv.DictReader(handle)
            row = next(reader)
        assert float(row["feature_0"]) == pytest.approx(dataset.values[0, 0, 0], rel=1e-5)

    def test_wrong_feature_names(self, tmp_path, dataset):
        with pytest.raises(ValueError):
            export_csv(tmp_path / "ds.csv", dataset, feature_names=["only_one"])


class TestLoadRetries:
    """The transient-IO retry seam: jittered backoff, injectable sleep."""

    def _flaky_reader(self, failures, exc=OSError):
        calls = {"n": 0}

        def reader(path):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc(f"transient failure {calls['n']}")
            return np.load(path)

        return reader, calls

    def test_transient_oserror_retried_through_backoff(self, tmp_path, dataset):
        from repro.resilience import Backoff

        path = tmp_path / "ds.npz"
        save_dataset(path, dataset)
        reader, calls = self._flaky_reader(failures=2)
        slept = []
        backoff = Backoff(base=0.1, factor=2.0, jitter=0.0, sleep=slept.append)
        restored = load_dataset(path, retries=3, backoff=backoff, reader=reader)
        assert calls["n"] == 3
        assert slept == [0.1, 0.2]  # exponential, never actually slept
        np.testing.assert_array_equal(restored.values, dataset.values)

    def test_retries_exhausted_reraises(self, tmp_path, dataset):
        from repro.resilience import Backoff

        path = tmp_path / "ds.npz"
        save_dataset(path, dataset)
        reader, calls = self._flaky_reader(failures=10)
        backoff = Backoff(base=0.0, jitter=0.0, sleep=lambda _s: None)
        with pytest.raises(OSError, match="transient failure 3"):
            load_dataset(path, retries=2, backoff=backoff, reader=reader)
        assert calls["n"] == 3

    def test_missing_file_never_retried(self, tmp_path):
        from repro.resilience import Backoff

        slept = []
        backoff = Backoff(base=0.1, jitter=0.0, sleep=slept.append)
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.npz", retries=5, backoff=backoff)
        assert slept == []

    def test_retry_wait_builds_a_fixed_schedule(self, tmp_path, dataset):
        # The legacy scalar knob still works: constant delay, no jitter.
        path = tmp_path / "ds.npz"
        save_dataset(path, dataset)
        reader, calls = self._flaky_reader(failures=1)
        restored = load_dataset(path, retries=1, retry_wait=0.0, reader=reader)
        assert calls["n"] == 2
        np.testing.assert_array_equal(restored.values, dataset.values)
