"""Bring your own data: forecasting a custom spatially-correlated series.

Run:  python examples/custom_dataset.py

Shows the lower-level API for users with their own (T, N, d) array:
windowing, scaling, batching, model construction, and a manual training
loop with the joint loss of Eq. 17 — everything `load_task`/`Trainer`
otherwise do for you.
"""

import numpy as np

from repro.autodiff import Tensor, mae_loss, no_grad
from repro.core import TGCRN, TimeDiscrepancyLearner
from repro.data import DataLoader, StandardScaler, make_windows
from repro.metrics import evaluate
from repro.nn import Adam, MultiStepLR, clip_grad_norm


def synthesize_custom_series(num_steps=600, num_nodes=6, seed=0):
    """Any (T, N, d) array works; here, coupled noisy oscillators whose
    coupling strength varies with the time of day."""
    rng = np.random.default_rng(seed)
    steps_per_day = 24
    t = np.arange(num_steps)
    phase = 2 * np.pi * (t % steps_per_day) / steps_per_day
    base = 5.0 + 2.0 * np.sin(phase)[:, None] + rng.normal(scale=0.3, size=(num_steps, num_nodes))
    coupling = 0.5 * (1 + np.sin(phase))  # stronger coupling mid-day
    mixed = base.copy()
    for k in range(1, num_steps):
        neighbours = np.roll(base[k - 1], 1)
        mixed[k] += coupling[k] * 0.3 * neighbours
    return mixed[:, :, None], t, steps_per_day


def main():
    values, time_index, steps_per_day = synthesize_custom_series()
    history, horizon = 6, 3

    # Train/test split on the raw series, then window each side.
    split = int(0.8 * len(values))
    scaler = StandardScaler().fit(values[:split])
    train_ws = make_windows(scaler.transform(values[:split]), time_index[:split], history, horizon)
    test_ws = make_windows(scaler.transform(values[split:]), time_index[split:], history, horizon)
    print(f"train windows: {len(train_ws)}, test windows: {len(test_ws)}")

    rng = np.random.default_rng(0)
    model = TGCRN(
        num_nodes=values.shape[1], in_dim=1, out_dim=1, horizon=horizon,
        hidden_dim=12, num_layers=1, node_dim=6, time_dim=6,
        steps_per_day=steps_per_day, rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=1e-4)
    scheduler = MultiStepLR(optimizer, milestones=[5, 20], gamma=0.3)
    discrepancy = TimeDiscrepancyLearner(model.time_encoder, rng, adjacent_range=history // 2)
    loader = DataLoader(train_ws, batch_size=16, shuffle=True, seed=0)

    for epoch in range(8):
        model.train()
        total, batches = 0.0, 0
        for x, y, t in loader:
            optimizer.zero_grad()
            prediction = model(Tensor(x), t)
            loss = mae_loss(prediction, Tensor(y)) + 0.1 * discrepancy(t)  # Eq. 17
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            total += loss.item()
            batches += 1
        scheduler.step()
        print(f"epoch {epoch}: joint loss {total / batches:.4f}")

    model.eval()
    with no_grad():
        prediction = model(Tensor(test_ws.inputs), test_ws.time_indices).numpy()
    report = evaluate(
        scaler.inverse_transform(prediction), scaler.inverse_transform(test_ws.targets)
    )
    print(f"\ntest: {report}")


if __name__ == "__main__":
    main()
