"""Table VIII: parameter counts and training time per epoch.

Parameter counts are computed at the *paper's* HZMetro configuration
(N = 80, hidden 64, two layers, TGCRN at (d_ν, d_τ) = (16,16) and
(64,32)) so the ordering matches the published table:
DCRNN/GWNet < AGCRN < ESG < TGCRN(16,16) < TGCRN(64,32) < PVCGN.
Per-epoch time is measured on the quick-scale training config, where the
expected shape is static-graph models cheapest, dynamic-graph models
(ESG, TGCRN) costlier, multi-graph PVCGN the most expensive recurrent.
"""

from __future__ import annotations

import numpy as np

from bench_utils import perf_snapshot, report, scale, tgcrn_kwargs

from repro.baselines import build_baseline
from repro.core import TGCRN
from repro.data import load_task
from repro.training import TrainingConfig, format_cost_table, run_experiment

GRAPH_MODELS = ("dcrnn", "agcrn", "gwnet", "pvcgn", "esg")


def _paper_scale_parameters() -> list[tuple[str, int]]:
    """Instantiate each graph model at HZMetro scale and count weights."""
    task = load_task("hzmetro", num_nodes=80, num_days=3, seed=0)
    rows = []
    for name in GRAPH_MODELS:
        model = build_baseline(name, task, hidden_dim=64, num_layers=2, seed=0)
        rows.append((name, model.num_parameters()))
    common = dict(
        num_nodes=80, in_dim=2, out_dim=2, horizon=4, hidden_dim=64,
        num_layers=2, steps_per_day=task.steps_per_day,
    )
    for dv, dt in ((16, 16), (64, 32)):
        model = TGCRN(**common, node_dim=dv, time_dim=dt, rng=np.random.default_rng(0))
        rows.append((f"tgcrn (dv={dv},dt={dt})", model.num_parameters()))
    return rows


def _timed_epochs() -> dict[str, float]:
    """Seconds per epoch on the quick config (relative ordering matters)."""
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=2, batch_size=16, seed=0)
    seconds = {}
    for name in GRAPH_MODELS + ("tgcrn",):
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if name == "tgcrn" else {}
        result = run_experiment(name, task, config, hidden_dim=s.hidden_dim,
                                num_layers=s.num_layers, **kwargs)
        seconds[name] = result.seconds_per_epoch
    return seconds


def _run() -> tuple[str, dict]:
    params = dict(_paper_scale_parameters())
    seconds = _timed_epochs()
    rows = []
    for name, count in params.items():
        timing_key = name.split(" ")[0]
        rows.append((name, count, seconds.get(timing_key, float("nan"))))
    data = {
        "parameters": params,
        "seconds_per_epoch": seconds,
    }
    return format_cost_table(rows), data


def test_table8_cost(benchmark):
    table, data = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("table8_cost", table, data=data)
    perf_snapshot("table8_cost", data)
