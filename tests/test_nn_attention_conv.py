"""Tests for attention and temporal-convolution layers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, randn
from repro.nn import (
    Conv1d,
    GatedTCNBlock,
    MultiHeadAttention,
    TransformerBlock,
    causal_mask,
    scaled_dot_product_attention,
)


class TestScaledDotProduct:
    def test_uniform_attention_averages_values(self):
        q = Tensor(np.zeros((1, 2, 4)))
        k = Tensor(np.zeros((1, 3, 4)))
        v = Tensor(np.arange(9.0).reshape(1, 3, 3))
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0))

    def test_mask_blocks_positions(self, rng):
        q = randn(1, 3, 4, rng=rng)
        k = randn(1, 3, 4, rng=rng)
        v = Tensor(np.eye(3)[None])
        mask = causal_mask(3)
        out = scaled_dot_product_attention(q, k, v, mask=mask)
        # Row 0 can only attend to position 0 -> output is exactly e_0.
        np.testing.assert_allclose(out.data[0, 0], [1.0, 0.0, 0.0], atol=1e-9)

    def test_gradient(self, rng):
        q = randn(1, 2, 4, rng=rng, requires_grad=True)
        k = randn(1, 3, 4, rng=rng, requires_grad=True)
        v = randn(1, 3, 4, rng=rng, requires_grad=True)
        check_gradients(lambda: scaled_dot_product_attention(q, k, v).tanh().sum(), [q, k, v], rtol=1e-3)


class TestCausalMask:
    def test_upper_triangular(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 1] and not mask[3, 0]


class TestMultiHeadAttention:
    def test_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        x = randn(3, 5, 8, rng=rng)
        assert mha(x, x, x).shape == (3, 5, 8)

    def test_head_divisibility_checked(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng=rng)

    def test_cross_attention_lengths(self, rng):
        mha = MultiHeadAttention(8, 2, rng=rng)
        q = randn(2, 4, 8, rng=rng)
        kv = randn(2, 9, 8, rng=rng)
        assert mha(q, kv, kv).shape == (2, 4, 8)


class TestTransformerBlock:
    def test_shape_preserved(self, rng):
        block = TransformerBlock(8, 2, 16, rng=rng)
        x = randn(2, 5, 8, rng=rng)
        assert block(x).shape == (2, 5, 8)

    def test_gradients_reach_all_parameters(self, rng):
        block = TransformerBlock(8, 2, 16, rng=rng)
        x = randn(2, 4, 8, rng=rng)
        block(x).sum().backward()
        assert all(p.grad is not None for p in block.parameters())


class TestConv1d:
    def test_shape_preserved(self, rng):
        conv = Conv1d(3, 5, kernel_size=2, dilation=1, rng=rng)
        assert conv(randn(2, 7, 3, rng=rng)).shape == (2, 7, 5)

    def test_receptive_field(self, rng):
        conv = Conv1d(1, 1, kernel_size=3, dilation=4, rng=rng)
        assert conv.receptive_field == 9

    def test_causality(self, rng):
        """Output at step t must not depend on inputs after t."""
        conv = Conv1d(1, 1, kernel_size=2, dilation=2, rng=rng)
        x = rng.normal(size=(1, 8, 1))
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5:, 0] += 100.0  # perturb the future
        out = conv(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-10)
        assert not np.allclose(out[0, 5:], base[0, 5:])

    def test_kernel_one_equals_linear(self, rng):
        conv = Conv1d(3, 4, kernel_size=1, rng=rng)
        x = rng.normal(size=(2, 5, 3))
        expected = x @ conv.weight.data[0] + conv.bias.data
        np.testing.assert_allclose(conv(Tensor(x)).data, expected)

    def test_gradient(self, rng):
        conv = Conv1d(2, 2, kernel_size=2, dilation=1, rng=rng)
        x = randn(1, 4, 2, rng=rng)
        check_gradients(lambda: conv(x).tanh().sum(), conv.parameters(), rtol=1e-3)


class TestGatedTCN:
    def test_shape_and_bound(self, rng):
        block = GatedTCNBlock(4, rng=rng)
        out = block(randn(2, 6, 4, rng=rng))
        assert out.shape == (2, 6, 4)
        assert (np.abs(out.data) <= 1.0 + 1e-9).all()  # tanh * sigmoid
